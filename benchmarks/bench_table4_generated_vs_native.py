"""Table 4 — The cost of generality: generated engine vs hand-written.

The ADL-generated rv32 engine against the hand-written
:class:`~repro.baseline.Rv32NativeEngine` (same solver substrate, same
exploration discipline) on the same kernels.  The paper-shape expectation:
the generated engine pays a small constant factor for interpreting IR
instead of native dispatch — and both engines must agree exactly on paths,
instructions and findings.

The **compiled** column is the answer to that constant factor
(``repro.compile``, ROADMAP item 1): the same generated engine with the
per-rule IR walk replaced by specialized transfer functions.  The CI
guard (``test_compiled_concrete_speedup_guard`` / ``--check`` as a
script) requires compiled concrete stepping to be **>= 2.0x** faster
than interpreted stepping on the exerciser kernel; the differential
harness (``tests/compile``) separately guarantees the speedup changes
nothing observable.
"""

import sys

import pytest

from repro.baseline import Rv32NativeEngine
from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.isa.simulator import Simulator
from repro.programs import build_kernel

from _util import (best_of_attempts, print_table, report_guard, timed,
                   write_telemetry_sidecar)

WORKLOADS = [
    ("password", {"secret": b"adl!"}),
    ("maze", {"depth": 7, "solution": 0b1011001}),
    ("checksum", {"length": 4, "magic": 0x2d2d}),
    ("bsearch", {}),
]

#: Required compiled-vs-interpreted speedup, concrete exerciser stepping.
GUARD_COMPILED_SPEEDUP = 2.0

#: Whole-kernel executions per timing sample (amortizes reset cost).
_CONCRETE_REPS = 300


def run_pair(kernel, params):
    model, image = build_kernel(kernel, "rv32", **params)
    # Generation cost is paid once per (ISA, spec digest) process-wide;
    # warm it here so the first row times exploration, not compilation.
    from repro.compile import compiled_for
    compiled_for(model)

    def native():
        engine = Rv32NativeEngine()
        engine.load_image(image)
        return engine.explore()

    def explore(compiled):
        engine = Engine(model, config=EngineConfig(
            collect_path_inputs=False, compiled_semantics=compiled))
        engine.load_image(image)
        return engine.explore()

    native_result, native_time = timed(native)
    generated_result, generated_time = timed(explore, False)
    compiled_result, compiled_time = timed(explore, True)
    return (native_result, native_time, generated_result, generated_time,
            compiled_result, compiled_time)


def table_rows():
    rows = []
    for kernel, params in WORKLOADS:
        nr, nt, gr, gt, cr, ct = run_pair(kernel, params)
        agree = (len(nr.paths) == len(gr.paths) == len(cr.paths)
                 and nr.instructions_executed == gr.instructions_executed
                 == cr.instructions_executed)
        rows.append([kernel, nr.instructions_executed,
                     "%.3fs" % nt, "%.3fs" % gt, "%.3fs" % ct,
                     "%.2fx" % (gt / nt if nt else float("nan")),
                     "%.2fx" % (ct / nt if nt else float("nan")),
                     "yes" if agree else "NO"])
    return rows


# -- concrete stepping guard --------------------------------------------------
#
# The exploration rows above are solver-dominated, so they understate what
# the specializer buys on the fetch/decode/execute core.  The guard times
# that core directly: whole concrete runs of the exerciser kernel (every
# portable operation, no solver), machine state reset from a snapshot
# between runs so the compiled side's fused decode->dispatch site cache
# stays warm — exactly the steady state a long concrete replay sees.

def _reset(sim, snapshot, entry):
    state = sim.state
    state.memory = dict(snapshot)
    state.pc = entry
    for regs in state.regfiles.values():
        for index in range(len(regs)):
            regs[index] = 0
    for name in state.registers:
        state.registers[name] = 0
    state.input_cursor = 0
    state.output = bytearray()
    sim.halted = False
    sim.exit_code = None
    sim.trapped = False
    sim.trap_code = None


def _concrete_wall(compiled, reps=_CONCRETE_REPS):
    """Best-of-5 wall time for ``reps`` exerciser runs; also returns the
    per-run instruction count (for the sanity check)."""
    model, image = build_kernel("exerciser", "rv32")
    sim = Simulator(model, compiled=compiled)
    sim.state.load_image(image)
    snapshot = dict(sim.state.memory)
    entry = sim.state.pc

    def sample():
        for _ in range(reps):
            _reset(sim, snapshot, entry)
            sim.run(20000)

    best = None
    for _attempt in range(5):
        _, wall = timed(sample)
        best = wall if best is None else min(best, wall)
    _reset(sim, snapshot, entry)
    sim.run(20000)
    assert sim.halted, "exerciser must halt"
    return best, sim.instruction_count


def concrete_speedup():
    """(speedup, interpreted_wall, compiled_wall) on the exerciser."""
    interpreted_wall, interp_count = _concrete_wall(compiled=False)
    compiled_wall, compiled_count = _concrete_wall(compiled=True)
    assert interp_count == compiled_count, "instruction counts diverged"
    return interpreted_wall / compiled_wall, interpreted_wall, compiled_wall


@benchmark("compile.concrete_speedup",
           title="compiled semantics: concrete stepping speedup",
           suite="quick", isas=("rv32",), unit="x", direction="higher",
           expect_min=GUARD_COMPILED_SPEEDUP, reps=1, warmup=0,
           workload="exerciser kernel, %d concrete runs per sample, "
                    "best-of-5 internally" % _CONCRETE_REPS)
def _observatory_sample():
    speedup, interpreted_wall, compiled_wall = concrete_speedup()
    return Sample(speedup, wall_s=interpreted_wall + compiled_wall)


def print_report(check=False):
    print_table(
        "Table 4: hand-written rv32 engine vs ADL-generated engine",
        ["kernel", "instrs", "native", "generated", "compiled",
         "gen slowdown", "compiled slowdown", "results agree"],
        table_rows())
    speedup, interpreted_wall, compiled_wall = concrete_speedup()
    runs = [{"label": "exerciser concrete x%d" % _CONCRETE_REPS,
             "interpreted_s": round(interpreted_wall, 4),
             "compiled_s": round(compiled_wall, 4)}]
    sidecar = write_telemetry_sidecar(
        __file__, runs, compiled_speedup=round(speedup, 3),
        guard_required=GUARD_COMPILED_SPEEDUP)
    print("telemetry sidecar: %s" % sidecar)
    return report_guard(
        "compiled concrete stepping speedup (exerciser, %d runs)"
        % _CONCRETE_REPS, speedup, GUARD_COMPILED_SPEEDUP, check=check)


# -- pytest entry points ------------------------------------------------------

@pytest.mark.parametrize("flavor", ["native", "generated", "compiled"])
def test_maze_engines(benchmark, flavor):
    model, image = build_kernel("maze", "rv32", depth=6)

    def native():
        engine = Rv32NativeEngine()
        engine.load_image(image)
        return engine.explore()

    def generated():
        engine = Engine(model, config=EngineConfig(
            collect_path_inputs=False,
            compiled_semantics=(flavor == "compiled")))
        engine.load_image(image)
        return engine.explore()

    result = benchmark(native if flavor == "native" else generated)
    assert len(result.paths) == 63


def test_compiled_concrete_speedup_guard():
    """CI guard: compiled transfer functions must buy >= 2.0x on
    concrete exerciser stepping.

    Three attempts before failing: wall-clock guards on shared CI
    runners are noisy, and each sample is already best-of-5.
    """
    best = best_of_attempts(lambda: concrete_speedup()[0],
                            GUARD_COMPILED_SPEEDUP)
    assert best >= GUARD_COMPILED_SPEEDUP, (
        "compiled speedup %.2fx below the %.2fx guard"
        % (best, GUARD_COMPILED_SPEEDUP))


def test_print_table4():
    print_report()


if __name__ == "__main__":
    sys.exit(print_report(check="--check" in sys.argv[1:]))
