"""Table 4 — The cost of generality: generated engine vs hand-written.

The ADL-generated rv32 engine against the hand-written
:class:`~repro.baseline.Rv32NativeEngine` (same solver substrate, same
exploration discipline) on the same kernels.  The paper-shape expectation:
the generated engine pays a small constant factor for interpreting IR
instead of native dispatch — and both engines must agree exactly on paths,
instructions and findings.
"""

import pytest

from repro.baseline import Rv32NativeEngine
from repro.core import Engine, EngineConfig
from repro.programs import build_kernel

from _util import print_table, timed

WORKLOADS = [
    ("password", {"secret": b"adl!"}),
    ("maze", {"depth": 7, "solution": 0b1011001}),
    ("checksum", {"length": 4, "magic": 0x2d2d}),
    ("bsearch", {}),
]


def run_pair(kernel, params):
    model, image = build_kernel(kernel, "rv32", **params)

    def native():
        engine = Rv32NativeEngine()
        engine.load_image(image)
        return engine.explore()

    def generated():
        engine = Engine(model, config=EngineConfig(
            collect_path_inputs=False))
        engine.load_image(image)
        return engine.explore()

    native_result, native_time = timed(native)
    generated_result, generated_time = timed(generated)
    return native_result, native_time, generated_result, generated_time


def table_rows():
    rows = []
    for kernel, params in WORKLOADS:
        nr, nt, gr, gt = run_pair(kernel, params)
        agree = (len(nr.paths) == len(gr.paths)
                 and nr.instructions_executed == gr.instructions_executed)
        rows.append([kernel, nr.instructions_executed,
                     "%.3fs" % nt, "%.3fs" % gt,
                     "%.2fx" % (gt / nt if nt else float("nan")),
                     "yes" if agree else "NO"])
    return rows


def print_report():
    print_table(
        "Table 4: hand-written rv32 engine vs ADL-generated engine",
        ["kernel", "instrs", "native", "generated", "slowdown",
         "results agree"],
        table_rows())


@pytest.mark.parametrize("flavor", ["native", "generated"])
def test_maze_engines(benchmark, flavor):
    model, image = build_kernel("maze", "rv32", depth=6)

    def native():
        engine = Rv32NativeEngine()
        engine.load_image(image)
        return engine.explore()

    def generated():
        engine = Engine(model,
                        config=EngineConfig(collect_path_inputs=False))
        engine.load_image(image)
        return engine.explore()

    result = benchmark(native if flavor == "native" else generated)
    assert len(result.paths) == 63


def test_print_table4():
    print_report()


if __name__ == "__main__":
    print_report()
