"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` module regenerates one table or figure of the
reconstructed evaluation (see DESIGN.md §4).  Each module works two ways:

* ``pytest benchmarks/ --benchmark-only`` — timed via pytest-benchmark;
  the paper-style rows are printed (visible with ``-s``).
* ``python benchmarks/bench_<x>.py`` — prints the full table directly.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.core import Engine, EngineConfig
from repro.programs import build_kernel

ALL_TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src", "repro")


def source_lines(path: str) -> int:
    """Non-blank, non-comment line count of one file."""
    count = 0
    with open(path) as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                count += 1
    return count


def python_loc(*subpackages: str) -> int:
    """Summed source lines of the given repro subpackages."""
    total = 0
    for subpackage in subpackages:
        root = os.path.join(_SRC, subpackage)
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if filename.endswith(".py"):
                    total += source_lines(os.path.join(dirpath, filename))
    return total


def adl_spec_loc(name: str) -> int:
    from repro.adl import builtin_spec_path
    return source_lines(builtin_spec_path(name))


def explore_kernel(target: str, kernel: str, config: Optional[EngineConfig]
                   = None, strategy: str = "dfs", **params):
    """Build + explore one kernel; returns (engine, result)."""
    model, image = build_kernel(kernel, target, **params)
    engine = Engine(model, config=config, strategy=strategy)
    engine.load_image(image)
    result = engine.explore()
    return engine, result


def print_table(title: str, headers: List[str], rows: List[List]) -> None:
    print("\n== %s ==" % title)
    widths = [max(len(str(headers[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start


# -- CI guard discipline -------------------------------------------------------
#
# Three modules carry absolute wall-clock guards (solver cache, run
# store, compiled semantics).  The printing / FAIL / exit-code shape and
# the best-of-N retry discipline used to be copy-pasted into each; they
# live here now.  The guard *thresholds* themselves are declared on the
# benchmark registrations (``repro.bench`` ``expect_min``) so ``repro
# bench run --check`` gates on the same numbers.

def report_guard(label, observed, required, check=False, fmt="%.2fx"):
    """Print the observed-vs-required guard line; under ``check``,
    print FAIL and return exit code 1 when the guard is missed."""
    print("\n%s: %s (required %s)" % (label, fmt % observed,
                                      fmt % required))
    if check and observed < required:
        print("FAIL: %s %s below the %s guard"
              % (label, fmt % observed, fmt % required))
        return 1
    return 0


def best_of_attempts(fn, required, attempts=3):
    """Best value of ``fn()`` over up to ``attempts`` tries, stopping
    early once ``required`` is met — the retry discipline of the
    wall-clock pytest guards on noisy shared runners."""
    best = 0.0
    for _attempt in range(attempts):
        best = max(best, fn())
        if best >= required:
            break
    return best


# -- telemetry sidecars --------------------------------------------------------
#
# When run as scripts, the table/figure benchmarks dump a machine-readable
# ``<bench>.telemetry.json`` next to the module: per-run phase breakdowns
# (decode / eval / solver / memory / strategy) plus counters, so a future
# perf PR can attribute a speedup to a specific phase instead of guessing.

def telemetry_sidecar_path(bench_file: str) -> str:
    """``benchmarks/bench_x.py`` -> ``benchmarks/bench_x.telemetry.json``."""
    root, _ext = os.path.splitext(os.path.abspath(bench_file))
    return root + ".telemetry.json"


def write_telemetry_sidecar(bench_file: str, runs: List[Dict],
                            **extra) -> str:
    """Write the sidecar for ``bench_file``; returns the sidecar path.

    ``runs`` is a list of records, typically
    ``{"label": ..., "telemetry": result.telemetry}`` or
    ``{"label": ..., "phases": {...}}``.  Keyword extras land at the top
    level of the payload (e.g. ``reproduction_rate=...``).
    """
    path = telemetry_sidecar_path(bench_file)
    payload = {
        "benchmark": os.path.basename(bench_file),
        "generated_unix": round(time.time(), 3),
        "runs": runs,
    }
    payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def merge_phase_snapshots(into: Dict[str, Dict[str, float]],
                          phases: Dict[str, Dict[str, float]]) -> None:
    """Accumulate one ``PhaseProfiler.snapshot()`` into ``into`` in place."""
    for name, row in phases.items():
        slot = into.setdefault(name, {"calls": 0, "total_s": 0.0,
                                      "self_s": 0.0})
        slot["calls"] += row["calls"]
        slot["total_s"] = round(slot["total_s"] + row["total_s"], 6)
        slot["self_s"] = round(slot["self_s"] + row["self_s"], 6)
