"""Translation validation: certificate-cached re-validation speedup.

The ``transval-*`` lint passes prove every compiled transfer function
equivalent to the reference IR; clean verdicts are cached as
certificates in the run store keyed on (spec digest, codegen version,
validator version).  This benchmark measures what the certificate
cache buys: the same all-ISA transval lint run, cold store vs warmed
store.

The CI guard (``lint.transval_cold_vs_cached`` via ``repro bench run
--check``, or ``--check`` when run as a script) requires the cached
re-validation to be **>= 5x** faster than the cold proof run.
"""

import os
import sys
import tempfile

from repro.bench import Sample, benchmark
from repro.lint import LintConfig, run_lint

from _util import (best_of_attempts, print_table, report_guard,
                   write_telemetry_sidecar)

ALL_TARGETS = ["rv32", "mips32", "armlite", "pred32", "vlx"]

#: Required cold/cached speedup of a certificate-hit re-validation.
GUARD_SPEEDUP = 5.0


def _transval_seconds():
    """One all-ISA transval lint sweep; returns (pass_seconds, rows).

    Only the transval pass wall time counts — front-end parse time is
    identical cold and cached and would dilute the ratio.
    """
    total = 0.0
    rows = []
    for target in ALL_TARGETS:
        report = run_lint(target, config=LintConfig(families=["transval"]))
        assert not report.errors(), "transval found real findings on %s" \
            % target
        seconds = sum(t.seconds for t in report.timings)
        cached = all(f.details.get("cached") for f in report.findings)
        rows.append((target, seconds, cached,
                     sum(t.solver_checks for t in report.timings)))
        total += seconds
    return total, rows


def cold_vs_cached():
    """(cold_seconds, cached_seconds, cold_rows, cached_rows) against a
    throwaway store so developer certificates never skew the run."""
    previous = os.environ.get("REPRO_STORE")
    with tempfile.TemporaryDirectory(prefix="repro-bench-transval-") \
            as store:
        os.environ["REPRO_STORE"] = store
        try:
            cold_total, cold_rows = _transval_seconds()
            cached_total, cached_rows = _transval_seconds()
        finally:
            if previous is None:
                os.environ.pop("REPRO_STORE", None)
            else:
                os.environ["REPRO_STORE"] = previous
    assert not any(cached for _t, _s, cached, _c in cold_rows)
    assert all(cached for _t, _s, cached, _c in cached_rows)
    return cold_total, cached_total, cold_rows, cached_rows


def speedup():
    cold, cached, _cold_rows, _cached_rows = cold_vs_cached()
    return cold / cached


@benchmark("lint.transval_cold_vs_cached",
           title="translation validation: certificate-cached "
                 "re-validation speedup",
           suite="quick", isas=tuple(ALL_TARGETS), unit="x",
           direction="higher", expect_min=GUARD_SPEEDUP, reps=3,
           warmup=0,
           workload="repro lint --family transval over all 5 shipped "
                    "ISAs, cold store vs certificate hits")
def _observatory_sample():
    cold, cached, cold_rows, _cached_rows = cold_vs_cached()
    return Sample(cold / cached, wall_s=cold + cached,
                  extra={"cold_s": round(cold, 4),
                         "cached_s": round(cached, 4),
                         "solver_checks": sum(row[3]
                                              for row in cold_rows)})


def print_report(check=False):
    cold, cached, cold_rows, cached_rows = cold_vs_cached()
    print_table(
        "Translation validation: cold proofs vs certificate hits",
        ["isa", "cold", "solver checks", "cached", "speedup"],
        [[target, "%.3fs" % cold_s, checks, "%.3fs" % cached_s,
          "%.1fx" % (cold_s / cached_s if cached_s else float("inf"))]
         for (target, cold_s, _f, checks), (_t, cached_s, _c, _n)
         in zip(cold_rows, cached_rows)])
    observed = best_of_attempts(speedup, GUARD_SPEEDUP) \
        if check else cold / cached
    sidecar = write_telemetry_sidecar(
        __file__,
        [{"label": target, "cold_s": round(cold_s, 4),
          "cached_s": round(cached_s, 4)}
         for (target, cold_s, _f, _ck), (_t, cached_s, _c, _n)
         in zip(cold_rows, cached_rows)],
        guard_speedup=round(observed, 3), guard_required=GUARD_SPEEDUP)
    print("telemetry sidecar: %s" % sidecar)
    return report_guard("certificate-cached re-validation speedup",
                        observed, GUARD_SPEEDUP, check=check)


if __name__ == "__main__":
    sys.exit(print_report(check="--check" in sys.argv))
