"""Table 6 (extension) — State merging (veritesting-lite).

The diamonds kernel is n independent branch diamonds feeding one
accumulator: 2**n paths without merging.  With
``EngineConfig(merge_states=True)`` under BFS scheduling (both arms must
be in the frontier at the join), register differences become ``ite``
terms and the path count collapses to O(n).

Expected shape: exponential vs linear growth in paths/instructions/time;
identical findings (the trap and its replayable input) either way.
"""

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.programs import build_kernel

from _util import print_table, timed

COUNTS = [6, 8, 10, 12]


def run_point(count, merge):
    model, image = build_kernel("diamonds", "rv32", count=count)
    config = EngineConfig(collect_path_inputs=False, merge_states=merge)
    engine = Engine(model, config=config, strategy="bfs")
    engine.load_image(image)
    result, wall = timed(engine.explore)
    merges = engine.strategy.merges if merge else 0
    return result, wall, merges


@benchmark("table6.merge_speedup",
           title="state merging: diamonds(10) merged vs plain",
           suite="full", isas=("rv32",), unit="x", direction="higher",
           reps=3, warmup=0,
           workload="diamonds(count 10) under BFS, merge_states on vs "
                    "off; findings must agree")
def _observatory_sample():
    plain, plain_time, _ = run_point(10, False)
    merged, merged_time, merges = run_point(10, True)
    assert merges > 0, "merging must fire on the diamonds kernel"
    assert (plain.first_defect("reachable-trap") is not None
            and merged.first_defect("reachable-trap") is not None)
    return Sample(plain_time / merged_time if merged_time else 0.0,
                  wall_s=plain_time + merged_time)


def table_rows():
    rows = []
    for count in COUNTS:
        plain, plain_time, _ = run_point(count, False)
        merged, merged_time, merges = run_point(count, True)
        plain_trap = plain.first_defect("reachable-trap") is not None
        merged_trap = merged.first_defect("reachable-trap") is not None
        rows.append([
            count,
            len(plain.paths), "%.2fs" % plain_time,
            len(merged.paths), "%.2fs" % merged_time,
            merges,
            "%.1fx" % (plain_time / merged_time if merged_time else 0),
            "yes" if plain_trap and merged_trap else "NO",
        ])
    return rows


def print_report():
    print_table(
        "Table 6: path explosion with and without state merging "
        "(diamonds kernel, BFS)",
        ["diamonds", "paths plain", "time plain", "paths merged",
         "time merged", "merges", "speedup", "trap found (both)"],
        table_rows())


@pytest.mark.parametrize("merge", [False, True],
                         ids=["plain", "merged"])
def test_diamonds_exploration(benchmark, merge):
    def run():
        result, _, _ = run_point(8, merge)
        return result

    result = benchmark(run)
    assert result.first_defect("reachable-trap") is not None


def test_print_table6():
    print_report()


if __name__ == "__main__":
    print_report()
