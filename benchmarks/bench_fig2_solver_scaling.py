"""Figure 2 — Solver scaling and the value of the cheap layers.

Two series:

* **End-to-end**: time to solve the checksum kernel's trap query as the
  input length (and hence the multiply-accumulate constraint chain)
  grows — the solver-bound workload.
* **Ablation**: the same engine runs with the model cache and interval
  pre-filter disabled, isolating what the cheap layers buy before
  bit-blasting (DESIGN.md lists this as a design-choice experiment).

Paper-shape expectation: solve time grows superlinearly with constraint
size; the filter layers give a constant-factor win that grows with the
number of (mostly easy) branch queries.
"""

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.programs import build_kernel
from repro.smt import Solver
from repro.smt import terms as T

from _util import print_table, timed

LENGTHS = [2, 3, 4, 5, 6]


def run_point(kernel, use_filters, **params):
    model, image = build_kernel(kernel, "rv32", **params)
    solver = Solver(use_intervals=use_filters, use_model_cache=use_filters)
    engine = Engine(model, solver=solver,
                    config=EngineConfig(collect_path_inputs=False))
    engine.load_image(image)
    result, wall = timed(engine.explore)
    return result, wall


@benchmark("fig2.filter_layers_speedup",
           title="solver filters: cheap-layer speedup on checksum",
           suite="full", isas=("rv32",), unit="x", direction="higher",
           reps=3, warmup=0,
           workload="checksum(len 4) with intervals+model-cache on vs "
                    "off")
def _observatory_sample():
    full, full_time = run_point("checksum", True, length=4, magic=0x2d2d)
    _bare, bare_time = run_point("checksum", False, length=4,
                                 magic=0x2d2d)
    return Sample(bare_time / full_time if full_time else 0.0,
                  wall_s=full_time + bare_time,
                  solver_time_s=full.solver_stats.get("solve_time"))


def figure_rows():
    rows = []
    for length in LENGTHS:
        full, full_time = run_point("checksum", True, length=length,
                                    magic=0x2d2d)
        bare, bare_time = run_point("checksum", False, length=length,
                                    magic=0x2d2d)
        stats = full.solver_stats
        rows.append([
            "checksum", length,
            int(stats["checks"]),
            int(stats["sat_calls"]),
            int(stats["cache_sat"]),
            "%.3fs" % full_time,
            "%.3fs" % bare_time,
            "%.2fx" % (bare_time / full_time if full_time else 0),
        ])
    # Branch-heavy counterpoint: the filters answer most of the (easy)
    # branch-feasibility queries before the SAT solver is ever invoked.
    for depth in (4, 6, 8):
        full, full_time = run_point("maze", True, depth=depth)
        bare, bare_time = run_point("maze", False, depth=depth)
        stats = full.solver_stats
        rows.append([
            "maze", depth,
            int(stats["checks"]),
            int(stats["sat_calls"]),
            int(stats["cache_sat"]),
            "%.3fs" % full_time,
            "%.3fs" % bare_time,
            "%.2fx" % (bare_time / full_time if full_time else 0),
        ])
    return rows


def constraint_family_rows():
    """Pure-solver series: chained multiply-accumulate equalities."""
    rows = []
    for length in LENGTHS:
        def solve():
            solver = Solver()
            acc = T.bv(0, 32)
            for i in range(length):
                byte = T.zext(T.var("f2_%d_%d" % (length, i), 8), 24)
                acc = T.and_(T.add(T.mul(acc, T.bv(31, 32)), byte),
                             T.bv(0xffff, 32))
            solver.add(T.eq(acc, T.bv(0x2d2d, 32)))
            return solver.check()

        answer, wall = timed(solve)
        rows.append([length, answer, "%.3fs" % wall])
    return rows


def print_report():
    print_table(
        "Figure 2a (series): exploration time with and without the "
        "filter layers (model cache + intervals)",
        ["kernel", "size", "checks", "SAT calls", "cache hits",
         "filters on", "filters off", "speedup"],
        figure_rows())
    print_table(
        "Figure 2b (series): raw solver time on the constraint family",
        ["chain length", "answer", "time"],
        constraint_family_rows())


# length 2 cannot reach 0x2d2d (max 255*31+255 = 8160): start at 3.
@pytest.mark.parametrize("length", [3, 4])
def test_checksum_solve_time(benchmark, length):
    model, image = build_kernel("checksum", "rv32", length=length,
                                magic=0x2d2d)

    def explore():
        engine = Engine(model,
                        config=EngineConfig(collect_path_inputs=False))
        engine.load_image(image)
        return engine.explore()

    result = benchmark(explore)
    assert result.first_defect("reachable-trap") is not None


def test_print_fig2():
    print_report()


if __name__ == "__main__":
    print_report()
