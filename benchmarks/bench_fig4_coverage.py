"""Figure 4 (extension) — Coverage growth per exploration strategy.

Block coverage attained as a function of the instruction budget, per
strategy, on the dispatcher kernel (a command loop re-entering the same
dispatch block every round with a trap hidden in one handler).  This is
the workload class where coverage-guided search is supposed to earn its
keep: DFS re-explores deep continuations of already-seen handlers, while
the coverage heap prefers states parked at unvisited code.

Not part of the reconstructed paper evaluation — an extension experiment
(DESIGN.md lists coverage feedback as future-work-grade functionality).
"""

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig, measure
from repro.isa.cfg import recover_cfg
from repro.programs import build_kernel

from _util import print_table, timed

BUDGETS = [50, 100, 200, 400, 800]
STRATEGIES = ["dfs", "bfs", "random", "coverage"]


def run_point(strategy, budget):
    model, image = build_kernel("dispatcher", "rv32", rounds=3)
    config = EngineConfig(max_instructions=budget, collect_coverage=True,
                          collect_path_inputs=False)
    engine = Engine(model, config=config, strategy=strategy, seed=5)
    engine.load_image(image)
    result = engine.explore()
    cfg = recover_cfg(model, image)
    report = measure(model, image, result.visited_pcs, cfg=cfg)
    return report, result


@benchmark("fig4.coverage_strategy_wall",
           title="coverage strategy: dispatcher at a 400-instr budget",
           suite="full", isas=("rv32",), unit="s", direction="lower",
           reps=3, warmup=1,
           workload="dispatcher(rounds 3), coverage-guided search, "
                    "400-instruction budget + CFG coverage measurement")
def _observatory_sample():
    (report, result), wall = timed(run_point, "coverage", 400)
    assert report.block_ratio > 0.3, "coverage strategy lost its edge"
    return Sample.from_result(wall, result, wall)


def figure_rows():
    rows = []
    for strategy in STRATEGIES:
        for budget in BUDGETS:
            report, result = run_point(strategy, budget)
            rows.append([strategy, budget,
                         "%d/%d" % (len(report.covered_blocks),
                                    report.cfg.block_count),
                         "%.0f%%" % (100 * report.block_ratio),
                         "yes" if result.first_defect("reachable-trap")
                         else "no"])
    return rows


def print_report():
    print_table(
        "Figure 4 (series): block coverage vs instruction budget",
        ["strategy", "budget", "blocks covered", "coverage",
         "trap found"],
        figure_rows())


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_coverage_at_budget(benchmark, strategy):
    def run():
        report, _ = run_point(strategy, 400)
        return report

    report = benchmark(run)
    assert report.block_ratio > 0.3


def test_print_fig4():
    print_report()


if __name__ == "__main__":
    print_report()
