"""Figure 3 — Cross-ISA consistency of solver-found inputs.

For every suite defect, the triggering input found on each ISA is
replayed (concretely, with checkers, via single-run concolic execution)
on every other ISA.  The figure reports the reproduction matrix; the
paper-shape expectation is 100% — the defects are input-level properties
of the portable program, so the generated engines must agree.
"""

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.core.concolic import ConcolicExplorer
from repro.isa import assemble, build
from repro.obs import Obs
from repro.programs import suite
from repro.programs.portable import lower

from _util import (ALL_TARGETS, merge_phase_snapshots, print_table, timed,
                   write_telemetry_sidecar)

CASES = ["div_by_zero", "oob_write", "oob_read", "underflow_wrap",
         "off_by_one", "magic_trap", "tainted_jump"]


def find_input(case, target):
    detected, result, _ = suite.run_case(case, target, "bad")
    assert detected
    return result.first_defect(case.defect_kind).input_bytes


def replay(case, target, input_bytes, obs=None):
    model = build(target)
    image = assemble(model, lower(case.build("bad"), target),
                     base=suite.CODE_BASE)
    config = EngineConfig()
    if obs is not None:
        config.obs = obs
    if case.needs_uninit_check:
        config.check_uninit = True
    if case.needs_taint_check:
        config.check_tainted_control = True
    engine = Engine(model, config=config)
    engine.load_image(image)
    for start, size, track in case.extra_regions:
        engine.add_region(start, size, track_uninit=track)
    explorer = ConcolicExplorer(engine)
    result = explorer.explore(seed=input_bytes, max_runs=1)
    return any(d.kind == case.defect_kind for d in result.defects)


@benchmark("fig3.cross_isa_replay_wall",
           title="cross-ISA replay: magic_trap input on every ISA",
           suite="full", isas=tuple(ALL_TARGETS), unit="s",
           direction="lower", reps=3, warmup=1,
           workload="solver-found magic_trap input from rv32, replayed "
                    "concolically on all %d ISAs" % len(ALL_TARGETS))
def _observatory_sample():
    case = suite.case_by_name("magic_trap")
    input_bytes = find_input(case, "rv32")

    def replay_all():
        hits = sum(int(replay(case, target, input_bytes))
                   for target in ALL_TARGETS)
        assert hits == len(ALL_TARGETS), "replay must reproduce everywhere"
    _, wall = timed(replay_all)
    return Sample(wall, wall_s=wall)


def figure_rows(telemetry=None):
    """Build the matrix; optionally accumulate per-destination-ISA phase
    breakdowns into ``telemetry`` (dict keyed by ISA name)."""
    rows = []
    total = 0
    reproduced = 0
    for case_name in CASES:
        case = suite.case_by_name(case_name)
        for source in ALL_TARGETS:
            input_bytes = find_input(case, source)
            hits = []
            for destination in ALL_TARGETS:
                obs = (Obs(metrics=True, profile=True)
                       if telemetry is not None else None)
                ok = replay(case, destination, input_bytes, obs=obs)
                if obs is not None:
                    merge_phase_snapshots(telemetry.setdefault(destination, {}),
                                          obs.profiler.snapshot())
                total += 1
                reproduced += int(ok)
                hits.append("y" if ok else "N")
            rows.append([case_name, source, repr(input_bytes),
                         " ".join(hits)])
    return rows, total, reproduced


def print_report(write_sidecar=False):
    telemetry = {} if write_sidecar else None
    rows, total, reproduced = figure_rows(telemetry=telemetry)
    print_table(
        "Figure 3 (matrix): inputs found on <source ISA> replayed on "
        "rv32/mips32/armlite/vlx",
        ["case", "source ISA", "input", "reproduces on"],
        rows)
    print("\nreproduction rate: %d/%d (%.0f%%)"
          % (reproduced, total, 100.0 * reproduced / total))
    if write_sidecar:
        runs = [{"label": isa, "isa": isa, "phases": telemetry[isa]}
                for isa in sorted(telemetry)]
        path = write_telemetry_sidecar(
            __file__, runs, cases=CASES,
            reproduction_rate="%d/%d" % (reproduced, total))
        print("telemetry sidecar: %s" % path)


def test_cross_isa_replay_time(benchmark):
    case = suite.case_by_name("magic_trap")
    input_bytes = find_input(case, "rv32")

    def replay_all():
        return sum(int(replay(case, target, input_bytes))
                   for target in ALL_TARGETS)

    hits = benchmark(replay_all)
    assert hits == len(ALL_TARGETS)


def test_print_fig3():
    print_report()


if __name__ == "__main__":
    print_report(write_sidecar=True)
