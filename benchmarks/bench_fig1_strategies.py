"""Figure 1 — Exploration strategies on a path-explosion workload.

Series per strategy (dfs/bfs/random/coverage): instructions executed and
states forked until the hidden trap of the maze kernel is found, as the
maze depth grows.  The paper-shape expectation: DFS reaches full-depth
paths with the least wasted work on this workload; BFS/coverage pay a
frontier cost that grows with 2**depth.
"""

import pytest

from repro.bench import Sample, benchmark
from repro.core import Engine, EngineConfig
from repro.programs import build_kernel

from _util import print_table, timed

DEPTHS = [4, 6, 8, 10]
STRATEGIES = ["dfs", "bfs", "random", "coverage"]
SOLUTIONS = {4: 0b1011, 6: 0b101100, 8: 0b10110010, 10: 0b1011001001}


def run_point(strategy, depth):
    model, image = build_kernel("maze", "rv32", depth=depth,
                                solution=SOLUTIONS[depth])
    config = EngineConfig(max_defects=1, collect_path_inputs=False,
                          max_states=1 << 14)
    engine = Engine(model, config=config, strategy=strategy, seed=11)
    engine.load_image(image)
    result, wall = timed(engine.explore)
    found = result.first_defect("reachable-trap") is not None
    return found, result, wall


@benchmark("fig1.dfs_maze_trap_wall",
           title="strategies: DFS time to the depth-8 maze trap",
           suite="full", isas=("rv32",), unit="s", direction="lower",
           reps=3, warmup=1,
           workload="maze(depth 8), DFS until the hidden trap is found")
def _observatory_sample():
    found, result, wall = run_point("dfs", 8)
    assert found, "DFS must reach the maze trap"
    return Sample.from_result(wall, result, wall)


def figure_rows():
    rows = []
    for depth in DEPTHS:
        for strategy in STRATEGIES:
            found, result, wall = run_point(strategy, depth)
            rows.append([depth, strategy, "yes" if found else "NO",
                         result.instructions_executed,
                         result.states_forked,
                         len(result.paths),
                         "%.3fs" % wall])
    return rows


def print_report():
    print_table(
        "Figure 1 (series): instructions until the maze trap is found",
        ["depth", "strategy", "found", "instructions", "forks",
         "completed paths", "time"],
        figure_rows())


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_to_first_trap(benchmark, strategy):
    model, image = build_kernel("maze", "rv32", depth=6,
                                solution=SOLUTIONS[6])

    def explore():
        config = EngineConfig(max_defects=1, collect_path_inputs=False)
        engine = Engine(model, config=config, strategy=strategy, seed=11)
        engine.load_image(image)
        return engine.explore()

    result = benchmark(explore)
    assert result.first_defect("reachable-trap") is not None


def test_print_fig1():
    print_report()


if __name__ == "__main__":
    print_report()
