#!/usr/bin/env python3
"""Cross-architecture bug hunting: one defect suite, four ISAs.

Runs every Juliet-style defect case (bad and good variants) through the
generated symbolic engines of all four built-in ISAs and prints the
detection matrix — the live version of the paper-style Table 2.  Inputs
found on one ISA are replayed on the others to show the engines agree.

Run:  python examples/crossarch_bughunt.py
"""

from repro.core.concolic import ConcolicExplorer
from repro.core import Engine, EngineConfig
from repro.isa import assemble, build
from repro.programs import suite
from repro.programs.portable import lower

TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]


def detection_matrix():
    print("=== Detection matrix (bad variants must be caught, good must "
          "stay clean) ===\n")
    header = "%-16s %-8s" % ("case", "CWE")
    for target in TARGETS:
        header += " %12s" % target
    print(header)
    print("-" * len(header))
    triggering = {}
    for case in suite.all_cases():
        row = "%-16s %-8s" % (case.name, case.cwe)
        for target in TARGETS:
            bad_hit, bad_result, _ = suite.run_case(case, target, "bad")
            good_hit, _, _ = suite.run_case(case, target, "good")
            cell = ("hit" if bad_hit else "MISS") + "/" + \
                   ("clean" if not good_hit else "FP!")
            row += " %12s" % cell
            if bad_hit and case.name not in triggering:
                defect = bad_result.first_defect(case.defect_kind)
                triggering[case.name] = (target, defect.input_bytes)
        print(row)
    return triggering


def replay_everywhere(triggering):
    print("\n=== Cross-ISA replay: inputs transfer between architectures "
          "===\n")
    for case in suite.all_cases():
        if case.name not in triggering:
            continue
        source_isa, input_bytes = triggering[case.name]
        reproduced = []
        for target in TARGETS:
            model = build(target)
            image = assemble(model, lower(case.build("bad"), target),
                             base=suite.CODE_BASE)
            config = EngineConfig()
            if case.needs_uninit_check:
                config.check_uninit = True
            if case.needs_taint_check:
                config.check_tainted_control = True
            engine = Engine(model, config=config)
            engine.load_image(image)
            for start, size, track in case.extra_regions:
                engine.add_region(start, size, track_uninit=track)
            explorer = ConcolicExplorer(engine)
            result = explorer.explore(seed=input_bytes, max_runs=1)
            hit = any(d.kind == case.defect_kind for d in result.defects)
            reproduced.append(target if hit else "(%s!)" % target)
        print("%-16s input %-12r (found on %-7s) reproduces on: %s"
              % (case.name, input_bytes, source_isa,
                 ", ".join(reproduced)))


def main():
    triggering = detection_matrix()
    replay_everywhere(triggering)


if __name__ == "__main__":
    main()
