#!/usr/bin/env python3
"""Flight recorder tour: execution trees and ADL spec-coverage diffs.

Explores the dispatcher kernel twice — once depth-first, once with the
coverage-guided frontier — under the same instruction budget, with a
:class:`FlightRecorder` sink building the execution tree live.  Prints
each run's reconstructed tree, then diffs which ADL semantic rules each
strategy exercised: with a tight budget the two frontiers walk different
handlers, so the spec-coverage reports disagree in inspectable ways.

Run:  python examples/flight_recorder.py
"""

from repro.core import Engine, EngineConfig
from repro.obs import FlightRecorder, Obs, RingBufferSink, SpecCoverage
from repro.programs import build_kernel

ISA = "rv32"
BUDGET = 260          # instructions — tight enough that strategy matters


def record(strategy):
    """Explore under ``strategy``; return (result, tree, spec coverage)."""
    model, image = build_kernel("dispatcher", ISA, rounds=3)
    obs = Obs.default()
    ring = RingBufferSink(capacity=200000)
    recorder = FlightRecorder()
    obs.add_sink(ring)
    obs.add_sink(recorder)
    engine = Engine(model, strategy=strategy,
                    config=EngineConfig(obs=obs, max_instructions=BUDGET))
    engine.load_image(image)
    result = engine.explore()
    coverage = SpecCoverage.from_events(ring.events())
    return result, recorder.tree, coverage


def main():
    runs = {}
    for strategy in ("dfs", "coverage"):
        result, tree, coverage = record(strategy)
        runs[strategy] = (result, tree, coverage)

        stats = tree.stats()
        print("=== %s (budget: %d instructions) ===" % (strategy, BUDGET))
        print("paths=%d defects=%d | tree: %d nodes, %d edges, "
              "%d leaves" % (len(result.paths), len(result.defects),
                             stats["nodes"], stats["edges"],
                             stats["leaves"]))
        print(tree.to_ascii(max_nodes=40))
        print(coverage.per_isa[ISA].summary())
        print()

    # The recorder's tree is exact: leaves correspond one-to-one with the
    # engine's completed paths on every run.
    for strategy, (result, tree, _) in runs.items():
        assert len(tree.leaves()) == len(result.paths), strategy

    # -- spec-coverage diff ------------------------------------------
    cov_dfs = runs["dfs"][2].per_isa[ISA]
    cov_cgs = runs["coverage"][2].per_isa[ISA]
    only_dfs = sorted(set(cov_dfs.covered) - set(cov_cgs.covered))
    only_cgs = sorted(set(cov_cgs.covered) - set(cov_dfs.covered))

    print("=== spec-coverage diff (dfs vs coverage) ===")
    print("rules only dfs hit      : %s" % (", ".join(only_dfs) or "-"))
    print("rules only coverage hit : %s" % (", ".join(only_cgs) or "-"))
    print("rule ratio: dfs %.2f, coverage %.2f"
          % (cov_dfs.rule_ratio, cov_cgs.rule_ratio))

    # Both attribution paths stayed total: every executed instruction
    # maps to a rule with a valid line span in the ADL spec.
    assert cov_dfs.unattributed == {} and cov_cgs.unattributed == {}
    print("\nevery executed instruction attributed to an ADL rule on "
          "both runs")


if __name__ == "__main__":
    main()
