#!/usr/bin/env python3
"""The retargeting demo: add a brand-new ISA and get a symbolic engine.

This is the paper's headline claim, live: describe a never-seen-before
architecture in ~60 lines of ADL, and *without writing any engine code*
obtain an assembler, decoder, disassembler, concrete simulator, and a
bug-finding symbolic executor for it.

The toy ISA here ("stk8") is a little 8-bit-word stack-flavoured machine
with an accumulator — deliberately unlike the four built-in ISAs.

Run:  python examples/new_isa_tutorial.py
"""

from repro.adl import analyze, parse_spec
from repro.core import Engine
from repro.isa import assemble, format_instruction, run_image
from repro.isa.model import ArchModel

STK8_ADL = """
# stk8: an 8-bit accumulator machine with a tiny stack in registers.
architecture stk8 {
  wordsize 8
  endian little

  regfile s[4] width 8 prefix "s"     # a 4-slot "stack"
  register acc width 8                # accumulator
  pc width 8

  encoding op0 { op:8 }               # 1 byte
  encoding op1 { imm:8 op:8 }         # 2 bytes: op, imm

  instruction lda {                   # acc = imm
    encoding op1
    match op = 0x01
    syntax "lda {imm}"
    semantics { acc = imm; }
  }
  instruction push {                  # shift the stack, push acc
    encoding op0
    match op = 0x02
    syntax "push"
    semantics {
      s[3] = s[2];
      s[2] = s[1];
      s[1] = s[0];
      s[0] = acc;
    }
  }
  instruction addt {                  # acc += top of stack
    encoding op0
    match op = 0x03
    syntax "addt"
    semantics { acc = acc + s[0]; }
  }
  instruction read {                  # acc = input byte
    encoding op0
    match op = 0x04
    syntax "read"
    semantics {
      local b:8 = in();
      acc = b;
    }
  }
  instruction beqi {                  # branch if acc == imm
    encoding op1
    match op = 0x05
    operand tgt = imm
    syntax "beqi {tgt}"
    semantics { if (acc == extract(tgt, 7, 0)) { pc = tgt; } }
  }
  instruction jmp {
    encoding op1
    match op = 0x06
    operand tgt = imm
    syntax "jmp {tgt}"
    semantics { pc = tgt; }
  }
  instruction emit {
    encoding op0
    match op = 0x07
    syntax "emit"
    semantics { out(acc); }
  }
  instruction die {
    encoding op1
    match op = 0x08
    syntax "die {imm}"
    semantics { trap(imm); }
  }
  instruction done {
    encoding op1
    match op = 0x09
    syntax "done {imm}"
    semantics { halt(imm); }
  }
}
"""

# A guarded "bug": reachable only when two input bytes sum to 77.
PROGRAM = """
.org 0x10
.entry start
start:
    read
    push
    read
    addt            # acc = in0 + in1
    beqi secret     # taken iff acc == address of 'secret' (see below)
    done 0
secret:
    die 9
"""


def main():
    # 1. Parse + check the ADL, build the full toolchain.
    spec = analyze(parse_spec(STK8_ADL))
    model = ArchModel(spec)
    print("built ISA %r: %d instructions, %d-bit words"
          % (model.name, len(model.instructions), model.wordsize))

    # 2. The generated assembler works immediately.
    image = assemble(model, PROGRAM, base=0x10)
    print("assembled %d bytes; 'secret' is at %#x"
          % (len(image.data), image.symbols["secret"]))

    # 3. So does the generated disassembler.
    window = bytes(image.data[:2])
    print("first instruction:",
          format_instruction(model, model.decoder.decode_bytes(window,
                                                               0x10)))

    # 4. And the generated *symbolic executor* finds the guarded trap.
    engine = Engine(model)
    engine.load_image(image)
    result = engine.explore()
    defect = result.first_defect("reachable-trap")
    print("\nsymbolic execution: %d paths, defect: %s"
          % (len(result.paths), defect))
    in0, in1 = defect.input_bytes[0], defect.input_bytes[1]
    target = image.symbols["secret"]
    print("solver found %d + %d == %#x (the branch target)"
          % (in0, in1, target))
    assert (in0 + in1) & 0xff == target

    # 5. Concrete replay on the generated simulator confirms.
    sim = run_image(model, image, input_bytes=defect.input_bytes)
    print("concrete replay: trapped=%s code=%s" % (sim.trapped,
                                                   sim.trap_code))
    assert sim.trapped and sim.trap_code == 9
    print("\nOK — a new ISA got a working symbolic engine from ~60 ADL "
          "lines.")


if __name__ == "__main__":
    main()
