#!/usr/bin/env python3
"""Exploration strategies and concolic mode on a path-explosion workload.

Runs the maze kernel (2**depth complete paths, one hidden trap) under the
four exploration strategies and under generational concolic search, and
reports how many instructions each needed before the trap was found.

Run:  python examples/strategies_and_concolic.py
"""

from repro.core import Engine, EngineConfig
from repro.core.concolic import ConcolicExplorer
from repro.programs import build_kernel

DEPTH = 7
SOLUTION = 0b1011001


def run_strategy(strategy):
    model, image = build_kernel("maze", "rv32", depth=DEPTH,
                                solution=SOLUTION)
    config = EngineConfig(max_defects=1)      # stop at the trap
    engine = Engine(model, config=config, strategy=strategy, seed=7)
    engine.load_image(image)
    result = engine.explore()
    found = result.first_defect("reachable-trap") is not None
    return found, result


def run_concolic():
    model, image = build_kernel("maze", "rv32", depth=DEPTH,
                                solution=SOLUTION)
    engine = Engine(model, config=EngineConfig(max_defects=1))
    engine.load_image(image)
    explorer = ConcolicExplorer(engine)
    result = explorer.explore(seed=bytes(DEPTH), max_runs=300)
    found = result.first_defect("reachable-trap") is not None
    return found, result, len(explorer.runs)


def main():
    print("maze(depth=%d): %d complete paths, one trap\n"
          % (DEPTH, 2 ** DEPTH))
    print("%-10s %-7s %14s %9s %9s" % ("strategy", "found",
                                       "instructions", "paths", "forks"))
    print("-" * 55)
    for strategy in ("dfs", "bfs", "random", "coverage"):
        found, result = run_strategy(strategy)
        print("%-10s %-7s %14d %9d %9d"
              % (strategy, found, result.instructions_executed,
                 len(result.paths), result.states_forked))
    found, result, runs = run_concolic()
    print("%-10s %-7s %14d %9s %9s"
          % ("concolic", found, result.instructions_executed,
             "%d runs" % runs, "-"))

    defect = result.first_defect("reachable-trap")
    if defect:
        bits = "".join(str(b & 1) for b in defect.input_bytes[:DEPTH])
        print("\ntrap input bits: %s (solution %s)"
              % (bits, format(SOLUTION, "0%db" % DEPTH)))


if __name__ == "__main__":
    main()
