#!/usr/bin/env python3
"""Case study: hunting bugs in a packet-protocol parser.

The parser validates a magic byte, dispatches on a type field, loops over
a variable-length payload, and enforces an xor checksum — and hides two
bugs behind that whole chain: a buffer overflow (length bound checked
against 32 instead of 16) and a division by zero (sum handler divides by
the payload sum unguarded).

The engine has to *chain every stage* to synthesize exploits: valid
magic, the right type, an overlong length, payload bytes, and a checksum
that matches them.  This is the "can it do real work" demo.

Run:  python examples/protocol_parser.py
"""

from repro.core import Engine, EngineConfig
from repro.isa import assemble, build, run_image
from repro.programs.parser_demo import MAGIC, protocol_parser
from repro.programs.portable import lower
from repro.programs.suite import CODE_BASE


def hunt(target, bad):
    model = build(target)
    image = assemble(model, lower(protocol_parser(bad), target),
                     base=CODE_BASE)
    engine = Engine(model, config=EngineConfig(max_states=4096))
    engine.load_image(image)
    return model, image, engine.explore()


def describe_packet(packet):
    if len(packet) < 3:
        return repr(packet)
    length = packet[2] & 31
    payload = packet[3:3 + length]
    checksum = packet[3 + length] if len(packet) > 3 + length else None
    xor = 0
    for byte in payload:
        xor ^= byte
    return ("magic=%#x type=%d len=%d payload=%r checksum=%s (xor=%#x)"
            % (packet[0], packet[1], length, bytes(payload),
               hex(checksum) if checksum is not None else "?", xor))


def main():
    for target in ("rv32", "vlx"):
        print("=== %s ===" % target)
        model, image, result = hunt(target, bad=True)
        print("bad variant: %d paths, %d instructions, %.1fs"
              % (len(result.paths), result.instructions_executed,
                 result.wall_time))
        for kind in ("out-of-bounds-access", "division-by-zero"):
            defect = result.first_defect(kind)
            assert defect is not None, "missed %s!" % kind
            print("  %s at %#x" % (kind, defect.pc))
            print("    exploit packet: %s" % describe_packet(
                defect.input_bytes))
            assert defect.input_bytes[0] == MAGIC
        _, _, clean = hunt(target, bad=False)
        print("fixed variant: %d paths, defects: %d  (must be 0)"
              % (len(clean.paths), len(clean.defects)))
        assert not clean.defects
        print()
    print("Both bugs found through the full validation chain; the fixed "
          "parser is clean.")


if __name__ == "__main__":
    main()
