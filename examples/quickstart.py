#!/usr/bin/env python3
"""Quickstart: generate an engine from an ADL model and crack a check.

Builds the rv32 model (generated from ``repro/adl/specs/rv32.adl``),
assembles a small guarded program, symbolically executes it to find the
input that reaches the trap, then replays that input on the concrete
simulator to confirm.

Run:  python examples/quickstart.py
"""

from repro import Engine, assemble, build, run_image

SOURCE = """
.org 0x1000
.entry start
start:
    inb  x1               # first input byte
    inb  x2               # second input byte
    add  x3, x1, x2
    addi x4, x0, 100
    bne  x3, x4, ok       # need  b0 + b1 == 100
    xor  x5, x1, x2
    addi x6, x0, 20
    bne  x5, x6, ok       # need  b0 ^ b1 == 20
    trap 42               # "the bug"
ok:
    halt 0
"""


def main():
    model = build("rv32")
    print("ISA model: %s (%d instructions, generated from ADL)"
          % (model.name, len(model.instructions)))

    image = assemble(model, SOURCE)
    print("assembled %d bytes at %#x" % (len(image.data), image.base))

    engine = Engine(model)
    engine.load_image(image)
    result = engine.explore()

    print("\nexploration: %d paths, %d defects, %d instructions, %.3fs"
          % (len(result.paths), len(result.defects),
             result.instructions_executed, result.wall_time))

    defect = result.first_defect("reachable-trap")
    if defect is None:
        raise SystemExit("expected to find the trap!")
    print("trap at %#x is reachable with input %r"
          % (defect.pc, defect.input_bytes))

    b0, b1 = defect.input_bytes[0], defect.input_bytes[1]
    print("check: %d + %d = %d, %d ^ %d = %d"
          % (b0, b1, (b0 + b1) & 0xff, b0, b1, b0 ^ b1))

    # Replay concretely: the simulator must hit the same trap.
    sim = run_image(model, image, input_bytes=defect.input_bytes)
    print("concrete replay: trapped=%s code=%s"
          % (sim.trapped, sim.trap_code))
    assert sim.trapped and sim.trap_code == 42
    print("\nOK — solver input confirmed by concrete execution.")


if __name__ == "__main__":
    main()
