#!/usr/bin/env python3
"""Live health monitoring: provoke frontier pressure, then degrade
gracefully.

A breadth-first exploration of a path-explosion maze doubles its
frontier at every branch — exactly the mid-flight failure mode the
health monitor exists to see.  Three runs of the same kernel:

1. **baseline** — no monitor, just the ground truth;
2. **observe-only** — a tight ``frontier_budget`` makes the watchdog
   diagnose ``frontier-pressure``, but the default action is ``none``,
   so exploration is provably unchanged (same paths, same defects);
3. **degraded** — the same budget with ``actions={"frontier-pressure":
   "merge"}``: every diagnosis forces a merge pass over the frontier,
   collapsing same-pc states and shrinking the path count while still
   reaching the planted defect.

Run:  python examples/health_monitor.py
"""

from repro.core import Engine, EngineConfig
from repro.obs import HealthConfig, Obs
from repro.obs.health import FRONTIER_PRESSURE

ISA = "rv32"
DEPTH = 8            # 2^8 paths without merging: real pressure
BUDGET = 6           # pending states allowed before the watchdog speaks


def explore(health=None):
    from repro.programs import build_kernel
    model, image = build_kernel("maze", ISA, depth=DEPTH,
                                solution=0b10110010)
    engine = Engine(model, strategy="bfs",
                    config=EngineConfig(obs=Obs.default(), health=health,
                                        collect_coverage=True))
    engine.load_image(image)
    return engine, engine.explore()


def main():
    # -- 1. ground truth ---------------------------------------------
    _, baseline = explore()
    print("=== baseline (no monitor) ===")
    print(baseline.summary())
    print()

    # -- 2. observe-only: the watchdog speaks, nothing changes ---------
    observed_cfg = HealthConfig(sample_every_steps=64,
                                frontier_budget=BUDGET)
    engine, observed = explore(health=observed_cfg)
    print("=== observe-only (frontier_budget=%d) ===" % BUDGET)
    print(observed.summary())
    print(engine.health.report())
    print()

    pressure = [d for d in engine.health.diagnoses
                if d["diagnosis"] == FRONTIER_PRESSURE]
    assert pressure, "a depth-%d bfs maze must blow a budget of %d" % (
        DEPTH, BUDGET)
    # Observe-only means observe only: identical exploration.
    assert len(observed.paths) == len(baseline.paths)
    assert ({d.input_bytes for d in observed.defects}
            == {d.input_bytes for d in baseline.defects})
    print("observe-only: %d frontier-pressure diagnoses, exploration "
          "unchanged (%d paths)" % (len(pressure), len(observed.paths)))
    print()

    # -- 3. degrade: force a merge pass on every diagnosis -------------
    merging_cfg = HealthConfig(
        sample_every_steps=64, frontier_budget=BUDGET,
        actions={FRONTIER_PRESSURE: "merge"})
    engine, merged = explore(health=merging_cfg)
    print("=== degraded (on pressure: force merge pass) ===")
    print(merged.summary())
    print(engine.health.report())
    print()

    assert len(merged.paths) < len(baseline.paths)
    assert {d.kind for d in merged.defects} == \
        {d.kind for d in baseline.defects}
    print("merge action: %d paths vs %d baseline — frontier collapsed, "
          "defect still found (%s)"
          % (len(merged.paths), len(baseline.paths),
             merged.defects[0].kind))


if __name__ == "__main__":
    main()
