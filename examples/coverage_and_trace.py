#!/usr/bin/env python3
"""Program analysis tour: CFG recovery, coverage, and trace replay.

Recovers the static control-flow graph of the bsearch kernel, explores it
symbolically with coverage collection, reports block coverage, and then
replays the solver-found trap input on the tracing simulator to produce a
human-readable execution log of the defect.

Run:  python examples/coverage_and_trace.py
"""

from repro.core import Engine, EngineConfig, measure, trace_run
from repro.isa.cfg import recover_cfg
from repro.programs import build_kernel


def main():
    model, image = build_kernel("bsearch", "rv32")

    # 1. Static CFG recovery (generated from the same ADL model).
    cfg = recover_cfg(model, image)
    print("static CFG: %d blocks, %d edges, indirect=%s"
          % (cfg.block_count, cfg.edge_count, cfg.has_indirect))
    for start, block in sorted(cfg.blocks.items()):
        targets = ", ".join(
            ("%#x(%s)" % (t, k)) if t is not None else k
            for t, k in block.successors)
        print("  block %#x (%d instrs) -> %s"
              % (start, len(block.addresses), targets))

    # 2. Symbolic exploration with coverage collection.
    engine = Engine(model, config=EngineConfig(collect_coverage=True))
    engine.load_image(image)
    result = engine.explore()
    report = measure(model, image, result.visited_pcs, cfg=cfg)
    print("\nexploration: %d paths, %d defects" % (len(result.paths),
                                                   len(result.defects)))
    print(report.summary())

    # 3. Replay the trap input under the tracer.
    defect = result.first_defect("reachable-trap")
    print("\ntrap input: %r — replaying with the tracer:\n"
          % defect.input_bytes)
    tracer = trace_run(model, image, input_bytes=defect.input_bytes)
    print(tracer.format(limit=18))
    print("\nreplay trapped=%s after %d instructions"
          % (tracer.simulator.trapped, len(tracer.entries)))


if __name__ == "__main__":
    main()
