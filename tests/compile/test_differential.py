"""Differential harness: compiled transfer functions vs IR interpretation.

The specializer's contract (`repro.compile`) is bit-for-bit
observational equivalence, not just equal final values: exploring with
``compiled_semantics=True`` must produce *identical* tree, leaf and
defect fingerprints — the same hashes the run store uses for replay
verification.  This harness enforces that on every shipped ISA, over
the exerciser kernel (touches every portable operation) and the whole
defect suite (every checker: div-zero, OOB, uninit, taint, trap).

The concrete twin is held to the same standard: full machine-state
equality (registers, memory, I/O, instruction count) after complete
simulator runs.
"""

import pytest

from repro.core import Engine, EngineConfig
from repro.obs import Obs
from repro.obs.sinks import RingBufferSink
from repro.programs import all_cases, build_kernel, run_case
from repro.programs.suite import CODE_BASE
from repro.runstore.fingerprint import (defects_fingerprint,
                                        leaves_fingerprint,
                                        tree_fingerprint)

ALL_TARGETS = ["rv32", "mips32", "armlite", "pred32", "vlx"]


def _config(compiled, **kwargs):
    ring = RingBufferSink(capacity=200000)
    obs = Obs(metrics=True)
    obs.add_sink(ring)
    config = EngineConfig(collect_coverage=True, obs=obs,
                          compiled_semantics=compiled, **kwargs)
    return config, ring


def _fingerprints(ring, result):
    serialized = result.to_dict()
    return (tree_fingerprint(ring.events()),
            leaves_fingerprint(serialized["paths"]),
            defects_fingerprint(serialized["defects"]))


def _explore_kernel(target, kernel, compiled):
    model, image = build_kernel(kernel, target)
    config, ring = _config(compiled)
    engine = Engine(model, config=config)
    engine.load_image(image)
    result = engine.explore()
    return _fingerprints(ring, result)


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_exerciser_fingerprints_identical(target):
    interpreted = _explore_kernel(target, "exerciser", compiled=False)
    compiled = _explore_kernel(target, "exerciser", compiled=True)
    assert interpreted == compiled


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_defect_suite_fingerprints_identical(target):
    for case in all_cases():
        for variant in ("bad", "good"):
            per_mode = {}
            for compiled in (False, True):
                config, ring = _config(compiled,
                                       max_steps_per_path=4096)
                detected, result, _image = run_case(case, target, variant,
                                                    config=config)
                per_mode[compiled] = (detected, result.stop_reason,
                                      _fingerprints(ring, result))
            assert per_mode[False] == per_mode[True], (
                "%s/%s/%s diverged" % (target, case.name, variant))


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_concrete_simulator_state_identical(target):
    from repro.isa.simulator import run_image

    model, image = build_kernel("exerciser", target)
    for input_bytes in (b"", b"\x00" * 8,
                        b"\xff\x7f\x01\x02\x03\x04\x05\x06", b"abcdefgh"):
        interp_sim = run_image(model, image, input_bytes=input_bytes,
                               max_steps=20000)
        compiled_sim = run_image(model, image, input_bytes=input_bytes,
                                 max_steps=20000, compiled=True)
        context = (target, input_bytes)
        assert interp_sim.output == compiled_sim.output, context
        assert interp_sim.halted == compiled_sim.halted, context
        assert interp_sim.exit_code == compiled_sim.exit_code, context
        assert interp_sim.trapped == compiled_sim.trapped, context
        assert interp_sim.trap_code == compiled_sim.trap_code, context
        assert interp_sim.state.pc == compiled_sim.state.pc, context
        assert interp_sim.state.regfiles == compiled_sim.state.regfiles, \
            context
        assert interp_sim.state.registers == compiled_sim.state.registers, \
            context
        assert interp_sim.state.memory == compiled_sim.state.memory, context
        assert interp_sim.state.input_cursor \
            == compiled_sim.state.input_cursor, context
        assert interp_sim.instruction_count \
            == compiled_sim.instruction_count, context


def test_compiled_flag_does_not_change_run_identity():
    """``compiled_semantics`` must be invisible to the run store: it is
    not serialized, so a compiled submission hits the cache entry an
    interpreted run recorded (and vice versa)."""
    config = EngineConfig(compiled_semantics=True)
    assert "compiled_semantics" not in config.to_dict()
    assert "compiled_semantics" not in EngineConfig._SERIALIZED_FIELDS
    rebuilt = EngineConfig.from_dict(config.to_dict())
    assert rebuilt.compiled_semantics is False


def test_store_hit_across_modes(tmp_path):
    """Record interpreted, resubmit compiled: must be a store *hit* with
    the recorded fingerprints verifying against the compiled re-run."""
    from repro.runstore import RunStore
    from repro.runstore.store import cached_explore

    model, image = build_kernel("exerciser", "rv32")
    store = RunStore(str(tmp_path / "store"))
    _result, first, hit = cached_explore(
        store, model, image,
        EngineConfig(collect_coverage=True, compiled_semantics=False),
        "dfs", 0, ())
    assert not hit
    _result, second, hit = cached_explore(
        store, model, image,
        EngineConfig(collect_coverage=True, compiled_semantics=True),
        "dfs", 0, ())
    assert hit
    assert second.run_id == first.run_id


def test_deep_attr_step_falls_back_without_changing_fingerprints():
    """Cost attribution's deep steps run interpreted (the per-IR-kind
    probes need the recursive walk); fingerprints must still match a
    fully interpreted exploration, attr being observe-only."""
    from repro.obs.attr import AttrConfig

    model, image = build_kernel("exerciser", "rv32")
    baseline = _explore_kernel("rv32", "exerciser", compiled=False)
    config, ring = _config(True)
    config.attr = AttrConfig(mode="full")
    engine = Engine(model, config=config)
    engine.load_image(image)
    result = engine.explore()
    assert _fingerprints(ring, result) == baseline
    # The attribution profile still carries per-IR-kind rows, proving
    # the deep-step fallback actually engaged the interpreted walk.
    attr_block = (result.telemetry or {}).get("attr")
    assert attr_block, "attr telemetry missing"

    # Sampled mode is the risky interleaving: compiled steps alternate
    # with interpreted deep steps inside one exploration.
    config, ring = _config(True)
    config.attr = AttrConfig(mode="sampled", sample_every=3)
    engine = Engine(model, config=config)
    engine.load_image(image)
    result = engine.explore()
    assert _fingerprints(ring, result) == baseline
