"""Property test: compiled concrete step == interpreted step, always.

Hypothesis draws an instruction and random free-field values per ISA,
runs one step through the generated transfer function and through
:func:`repro.ir.interp.exec_block` on identical machines, and requires
full machine-state equality.  Derandomized so CI is reproducible; the
shared seed corpus still grows locally under ``.hypothesis``.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compile import compiled_for
from repro.ir import interp
from repro.isa import build
from repro.isa.simulator import MachineState

ALL_TARGETS = ["rv32", "mips32", "armlite", "pred32", "vlx"]


def _random_fields(model, instr, rng):
    """Random values for every free encoding field (register-index
    fields drawn from the regfile's valid range)."""
    from repro.adl.analyze import syntax_placeholders
    reg_fields = {name: kind
                  for name, kind in syntax_placeholders(instr.syntax)
                  if kind is not None}
    fields = {}
    for field in instr.encoding.fields:
        if field.name in instr.decl.match:
            continue
        regfile = reg_fields.get(field.name)
        if regfile is not None:
            fields[field.name] = rng.randrange(model.regfiles[regfile].count)
        else:
            fields[field.name] = rng.getrandbits(field.width)
    return fields


def _random_machine(model, rng, input_bytes):
    machine = MachineState(model, input_bytes=input_bytes)
    for name, info in model.regfiles.items():
        for index in range(info.count):
            machine.write_reg(name, index, rng.getrandbits(info.width))
    for name, width in model.registers.items():
        machine.write_reg(name, None, rng.getrandbits(width))
    for _ in range(32):
        addr = rng.randrange(0, 1 << model.pc_width)
        machine.memory[addr] = rng.getrandbits(8)
    machine.pc = 0x1000
    return machine


def _clone_machine(model, machine, input_bytes):
    clone = MachineState(model, input_bytes=input_bytes)
    clone.regfiles = {name: list(values)
                     for name, values in machine.regfiles.items()}
    clone.registers = dict(machine.registers)
    clone.memory = dict(machine.memory)
    clone.pc = machine.pc
    return clone


def _assert_machines_equal(left, right, context):
    assert left.regfiles == right.regfiles, context
    assert left.registers == right.registers, context
    assert left.memory == right.memory, context
    assert left.pc == right.pc, context
    assert left.output == right.output, context
    assert left.input_cursor == right.input_cursor, context


def _assert_outcomes_equal(left, right, context):
    assert left.halted == right.halted, context
    assert left.exit_code == right.exit_code, context
    assert left.trapped == right.trapped, context
    assert left.trap_code == right.trap_code, context
    assert left.next_pc == right.next_pc, context


@pytest.mark.parametrize("target", ALL_TARGETS)
@given(data=st.data())
@settings(derandomize=True, deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
def test_compiled_step_matches_interpreted_step(target, data):
    model = build(target)
    table = compiled_for(model).concrete
    instr = data.draw(st.sampled_from(tuple(model.instructions)),
                      label="instruction")
    seed = data.draw(st.integers(min_value=0, max_value=2 ** 32 - 1),
                     label="machine seed")
    rng = random.Random(seed)
    fields = _random_fields(model, instr, rng)
    word = instr.assemble_word(fields)
    decoded_fields = instr.bind(word)
    input_bytes = bytes(rng.getrandbits(8) for _ in range(4))
    context = "%s/%s seed=%d" % (target, instr.name, seed)

    reference = _random_machine(model, rng, input_bytes)
    specialized = _clone_machine(model, reference, input_bytes)

    interp_outcome = interp.exec_block(instr.semantics, reference,
                                       decoded_fields)
    compiled_outcome = interp.ExecOutcome()
    table[instr.name](specialized, decoded_fields, compiled_outcome)

    _assert_outcomes_equal(interp_outcome, compiled_outcome, context)
    _assert_machines_equal(reference, specialized, context)
