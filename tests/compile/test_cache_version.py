"""Compilation-cache invalidation keys on the codegen version.

A generator change must not serve stale tables out of the in-process
cache: the key is ``(isa, spec digest, CODEGEN_VERSION)``, so bumping
the constant — the bump-on-change discipline for
:mod:`repro.compile.concrete` / :mod:`repro.compile.symbolic` edits —
transparently recompiles everything.
"""

import repro.compile as compile_mod
from repro.isa import build


def test_same_spec_same_generator_hits_cache():
    compile_mod.clear_cache()
    try:
        first = compile_mod.compiled_for(build("rv32"))
        second = compile_mod.compiled_for(build("rv32", fresh=True))
        assert second is first
        assert compile_mod.cache_info()["entries"] == 1
    finally:
        compile_mod.clear_cache()


def test_codegen_version_bump_invalidates(monkeypatch):
    compile_mod.clear_cache()
    try:
        model = build("rv32")
        before = compile_mod.compiled_for(model)
        monkeypatch.setattr(compile_mod, "CODEGEN_VERSION",
                            compile_mod.CODEGEN_VERSION + 1)
        after = compile_mod.compiled_for(model)
        assert after is not before
        assert compile_mod.cache_info()["entries"] == 2
    finally:
        compile_mod.clear_cache()


def test_compiled_semantics_records_generator_version():
    compile_mod.clear_cache()
    try:
        compiled = compile_mod.compiled_for(build("vlx"))
        assert compiled.codegen_version == compile_mod.CODEGEN_VERSION
    finally:
        compile_mod.clear_cache()


def test_every_rule_carries_its_generated_source():
    compile_mod.clear_cache()
    try:
        model = build("mips32")
        compiled = compile_mod.compiled_for(model)
        for instr in model.instructions:
            source = compiled.concrete[instr.name].generated_source
            assert source.startswith("def _c")
            assert "C" in source.split("(", 1)[1]
    finally:
        compile_mod.clear_cache()
