"""Unit tests for the specializer itself: generated source shape,
generation-time constant folding, input discipline, and the
spec-digest-keyed compilation cache."""

import shutil

import pytest

from repro.adl import analyze, parse_spec
from repro.compile import (CompileError, cache_info, clear_cache,
                           compile_block, compile_symbolic, compiled_for)
from repro.ir import interp
from repro.ir import nodes as N
from repro.isa import build
from repro.isa.model import ArchModel

ALL_TARGETS = ["rv32", "mips32", "armlite", "pred32", "vlx"]


class FakeMachine(interp.MachineContext):
    """Dict-backed machine, mirroring the interpreter unit tests."""

    def __init__(self, pc=0x1000, input_bytes=b""):
        self.regs = {}
        self.single = {}
        self.mem = {}
        self.pc = pc
        self.inputs = list(input_bytes)
        self.outputs = []

    def read_reg(self, regfile, index):
        if index is None:
            return self.single.get(regfile, 0)
        return self.regs.get((regfile, index), 0)

    def write_reg(self, regfile, index, value):
        if index is None:
            self.single[regfile] = value
        else:
            self.regs[(regfile, index)] = value

    def load(self, addr, size):
        value = 0
        for i in range(size):
            value |= self.mem.get(addr + i, 0) << (8 * i)
        return value

    def store(self, addr, value, size):
        for i in range(size):
            self.mem[addr + i] = (value >> (8 * i)) & 0xff

    def input_byte(self):
        return self.inputs.pop(0) if self.inputs else 0

    def output_byte(self, value):
        self.outputs.append(value)

    def current_pc(self):
        return self.pc


def c32(value):
    return N.Const(value, 32)


def run_compiled(stmts, machine=None, fields=None):
    machine = machine or FakeMachine()
    outcome = interp.ExecOutcome()
    compile_block("test", stmts)(machine, fields or {}, outcome)
    return machine, outcome


class TestCompileBlock:
    def test_basic_register_write(self):
        machine, outcome = run_compiled(
            [N.SetReg("x", c32(3), N.BinOp("add", c32(40), c32(2), 32))])
        assert machine.regs[("x", 3)] == 42
        assert outcome.next_pc is None and not outcome.halted

    def test_constants_folded_in_source(self):
        # 40 + 2 is machine-independent: the generated body must carry
        # the literal 42, not an add at run time.
        fn = compile_block("test", [
            N.SetReg("x", c32(3), N.BinOp("add", c32(40), c32(2), 32))])
        assert "42" in fn.generated_source
        assert "40" not in fn.generated_source

    def test_field_extraction_hoisted_and_masked(self):
        fn = compile_block("test", [
            N.SetReg("x", c32(1), N.Field("imm", 4)),
            N.SetReg("x", c32(2), N.Field("imm", 4))])
        # One hoisted `_f0 = F['imm'] & 0xf`, reused by both writes.
        assert fn.generated_source.count("F['imm']") == 1
        machine, _ = run_compiled(
            [N.SetReg("x", c32(1), N.Field("imm", 4))], fields={"imm": 0x1f})
        assert machine.regs[("x", 1)] == 0xf

    def test_constant_if_branch_eliminated(self):
        fn = compile_block("test", [
            N.IfStmt(N.BinOp("eq", c32(1), c32(1), 1),
                     [N.SetReg("x", c32(1), c32(7))],
                     [N.SetReg("x", c32(1), c32(9))])])
        assert "if " not in fn.generated_source
        assert "9" not in fn.generated_source
        machine, _ = run_compiled([
            N.IfStmt(N.BinOp("eq", c32(1), c32(1), 1),
                     [N.SetReg("x", c32(1), c32(7))],
                     [N.SetReg("x", c32(1), c32(9))])])
        assert machine.regs[("x", 1)] == 7

    def test_input_byte_whole_rhs_ok(self):
        machine, _ = run_compiled(
            [N.SetLocal("t", N.InputByte()),
             N.SetReg("x", c32(1), N.InputByte()),
             N.Output(N.Local("t", 8))],
            machine=FakeMachine(input_bytes=b"\xab\xcd"))
        assert machine.regs[("x", 1)] == 0xcd
        assert machine.outputs == [0xab]

    def test_nested_input_byte_rejected(self):
        nested = N.BinOp("add", N.Ext("zext", N.InputByte(), 32),
                         c32(1), 32)
        with pytest.raises(CompileError, match="right-hand side"):
            compile_block("test", [N.SetReg("x", c32(1), nested)])

    def test_halt_trap_and_pc(self):
        _, outcome = run_compiled([N.SetPc(c32(0x2000)), N.Halt(c32(3))])
        assert outcome.next_pc == 0x2000
        assert outcome.halted and outcome.exit_code == 3
        _, outcome = run_compiled([N.Trap(c32(7))])
        assert outcome.trapped and outcome.trap_code == 7


class TestTableCoverage:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_every_rule_compiles(self, target):
        model = build(target)
        compiled = compiled_for(model)
        assert set(compiled.concrete) == set(model.by_name)
        assert set(compiled.plans) == set(model.by_name)
        assert "generated by repro.compile" in compiled.source

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_symbolic_plans_are_plain_tuples(self, target):
        # The cache must never hold Term objects — the term pool is
        # swappable.  Plans are nested tuples of ints/strings/functions.
        from repro.smt.terms import Term

        def scan(value):
            assert not isinstance(value, Term)
            if isinstance(value, tuple):
                for item in value:
                    scan(item)

        plans, _source = compile_symbolic(build(target))
        for plan in plans.values():
            scan(plan)


class TestCache:
    def test_cache_hit_on_same_digest(self):
        clear_cache()
        model = build("rv32")
        first = compiled_for(model)
        assert cache_info() == {"entries": 1}
        # A freshly built model of the same (unchanged) spec digests
        # identically and must share the compilation.
        assert compiled_for(build("rv32", fresh=True)) is first
        assert cache_info() == {"entries": 1}

    def test_clear_cache(self):
        model = build("rv32")
        first = compiled_for(model)
        clear_cache()
        assert cache_info() == {"entries": 0}
        assert compiled_for(model) is not first

    def test_spec_edit_invalidates(self, tmp_path):
        """Editing the spec file changes its digest and forces a
        recompilation — the cache key is content, not ISA name."""
        from repro.adl import builtin_spec_path
        from repro.runstore.provenance import spec_digest

        spec_file = tmp_path / "rv32.adl"
        shutil.copy(builtin_spec_path("rv32"), spec_file)

        def model_from(path):
            with open(path) as handle:
                model = ArchModel(analyze(parse_spec(handle.read())))
            model.source_path = str(path)
            return model

        clear_cache()
        before = model_from(spec_file)
        first = compiled_for(before)
        spec_file.write_text(spec_file.read_text()
                             + "\n# touched by the cache test\n")
        after = model_from(spec_file)
        assert spec_digest(after) != first.digest
        second = compiled_for(after)
        assert second is not first
        assert second.digest != first.digest
        assert cache_info() == {"entries": 2}
