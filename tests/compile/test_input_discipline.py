"""Input discipline and machine-visible effect order.

``in()`` is legal only as the entire right-hand side of an assignment —
a discipline now enforced at every layer: the validator, the
interpreter, the symbolic engine, and both code generators.  The second
half pins the *order* of machine-visible effects (register reads,
loads, stores, input, output) by recording an op log from a tracing
machine and requiring the compiled function to replay the interpreter's
log exactly.  Equal final state is not enough: input cursors and
self-modifying stores make order observable.
"""

import pytest

from repro.compile import compile_block
from repro.ir import interp
from repro.ir import nodes as N
from repro.ir.validate import IrError, validate_block, validate_expr


def c32(value):
    return N.Const(value, 32)


class TracingMachine(interp.MachineContext):
    """Records every machine-visible operation in call order."""

    def __init__(self, input_bytes=b""):
        self.regs = {}
        self.mem = {}
        self.inputs = list(input_bytes)
        self.log = []

    def read_reg(self, regfile, index):
        value = self.regs.get((regfile, index), 0)
        self.log.append(("read_reg", regfile, index, value))
        return value

    def write_reg(self, regfile, index, value):
        self.log.append(("write_reg", regfile, index, value))
        self.regs[(regfile, index)] = value

    def load(self, addr, size):
        value = 0
        for i in range(size):
            value |= self.mem.get(addr + i, 0) << (8 * i)
        self.log.append(("load", addr, size, value))
        return value

    def store(self, addr, value, size):
        self.log.append(("store", addr, value, size))
        for i in range(size):
            self.mem[addr + i] = (value >> (8 * i)) & 0xff

    def input_byte(self):
        value = self.inputs.pop(0) if self.inputs else 0
        self.log.append(("input", value))
        return value

    def output_byte(self, value):
        self.log.append(("output", value))

    def current_pc(self):
        return 0x1000


def logs_for(stmts, input_bytes=b"", fields=None):
    """(interpreter log, compiled log) for the same block."""
    reference = TracingMachine(input_bytes)
    interp.exec_block(stmts, reference, fields or {})
    traced = TracingMachine(input_bytes)
    compile_block("test", stmts)(traced, fields or {}, interp.ExecOutcome())
    return reference.log, traced.log


class TestValidatorDiscipline:
    def test_nested_input_byte_rejected(self):
        nested = N.BinOp("add", N.Ext("zext", N.InputByte(), 32),
                         c32(1), 32)
        with pytest.raises(IrError, match="right-hand side"):
            validate_expr(N.Ext("zext", N.InputByte(), 32))
        with pytest.raises(IrError, match="right-hand side"):
            validate_block([N.SetReg("x", c32(1), nested)])
        with pytest.raises(IrError, match="right-hand side"):
            validate_block([N.Output(N.Ext("zext", N.InputByte(), 32))])

    def test_whole_rhs_input_byte_accepted(self):
        validate_block([N.SetLocal("t", N.InputByte()),
                        N.SetReg("x", c32(1), N.InputByte())])


class TestEffectOrder:
    def test_statement_order(self):
        interp_log, compiled_log = logs_for(
            [N.SetLocal("a", N.InputByte()),
             N.Output(N.Local("a", 8)),
             N.SetLocal("b", N.InputByte()),
             N.Output(N.Local("b", 8))],
            input_bytes=b"\x11\x22")
        assert interp_log == compiled_log
        assert [op for op in compiled_log] == [
            ("input", 0x11), ("output", 0x11),
            ("input", 0x22), ("output", 0x22)]

    def test_binop_operands_left_to_right(self):
        stmts = [N.SetReg("x", c32(1), N.BinOp(
            "add", N.ReadReg("x", c32(2), 32),
            N.ReadReg("x", c32(3), 32), 32))]
        interp_log, compiled_log = logs_for(stmts)
        assert interp_log == compiled_log

    def test_store_then_load_same_address(self):
        # Order is semantically observable here, not just traceable.
        stmts = [N.Store(c32(0x100), c32(0xaa), 1),
                 N.SetReg("x", c32(1), N.Load(c32(0x100), 1)),
                 N.Store(c32(0x100), c32(0xbb), 1),
                 N.SetReg("x", c32(2), N.Load(c32(0x100), 1))]
        interp_log, compiled_log = logs_for(stmts)
        assert interp_log == compiled_log

    def test_setreg_index_evaluated_before_value(self):
        # The interpreter evaluates SetReg's index expression before the
        # value expression; the generated call must replicate that.
        stmts = [N.SetReg("x", N.ReadReg("x", c32(4), 32),
                          N.ReadReg("x", c32(5), 32))]
        interp_log, compiled_log = logs_for(stmts)
        assert interp_log == compiled_log
        assert compiled_log[0] == ("read_reg", "x", 4, 0)

    def test_ite_only_chosen_arm_runs(self):
        # Lazy ite: the untaken arm's load must not appear in the log.
        picker = N.IteExpr(N.BinOp("eq", N.ReadReg("x", c32(1), 32),
                                   c32(0), 1),
                           N.Load(c32(0x100), 1),
                           N.Load(c32(0x200), 1))
        for taken in (0, 1):
            reference = TracingMachine()
            reference.regs[("x", 1)] = taken
            interp.exec_block([N.SetReg("x", c32(2),
                                        N.Ext("zext", picker, 32))],
                              reference, {})
            traced = TracingMachine()
            traced.regs[("x", 1)] = taken
            compile_block("test", [N.SetReg("x", c32(2),
                                            N.Ext("zext", picker, 32))])(
                traced, {}, interp.ExecOutcome())
            assert reference.log == traced.log
            loads = [op for op in traced.log if op[0] == "load"]
            assert len(loads) == 1

    def test_untaken_if_branch_consumes_no_input(self):
        stmts = [N.IfStmt(N.BinOp("eq", N.ReadReg("x", c32(1), 32),
                                  c32(0), 1),
                          [N.SetLocal("a", N.InputByte()),
                           N.Output(N.Local("a", 8))],
                          [N.Output(c32(0x99))])]
        for taken in (0, 1):
            reference = TracingMachine(b"\x55")
            reference.regs[("x", 1)] = taken
            interp.exec_block(stmts, reference, {})
            traced = TracingMachine(b"\x55")
            traced.regs[("x", 1)] = taken
            compile_block("test", stmts)(traced, {}, interp.ExecOutcome())
            assert reference.log == traced.log

    def test_signed_compare_and_shift_edge_order(self):
        stmts = [N.SetReg("x", c32(1), N.Ext("zext", N.BinOp(
                    "slt", N.ReadReg("x", c32(2), 32),
                    N.ReadReg("x", c32(3), 32), 1), 32)),
                 N.SetReg("x", c32(4), N.BinOp(
                    "ashr", N.ReadReg("x", c32(5), 32),
                    N.ReadReg("x", c32(6), 32), 32))]
        reference = TracingMachine()
        reference.regs.update({("x", 2): 0x80000000, ("x", 3): 1,
                               ("x", 5): 0x80000000, ("x", 6): 99})
        interp.exec_block(stmts, reference, {})
        traced = TracingMachine()
        traced.regs.update({("x", 2): 0x80000000, ("x", 3): 1,
                            ("x", 5): 0x80000000, ("x", 6): 99})
        compile_block("test", stmts)(traced, {}, interp.ExecOutcome())
        assert reference.log == traced.log
        assert traced.regs[("x", 1)] == 1           # -2^31 < 1 signed
        assert traced.regs[("x", 4)] == 0xffffffff  # ashr saturates
