"""Run store: content addressing, atomic commit, dedup, gc.

Acceptance pins:
* an identical submission hits the store, increments ``store.hit`` and
  performs ZERO new solver checks (no engine is even constructed);
* the stored result round-trips paths/defects/coverage;
* the run id depends on every key component and nothing else.
"""

import json
import os

import pytest

from repro.core import EngineConfig
from repro.programs.kernels import build_kernel
from repro.runstore import (RunStore, RunStoreError, cached_explore,
                            image_from_payload, image_payload,
                            record_exploration, run_key, spec_digest)


@pytest.fixture(scope="module")
def kernel():
    return build_kernel("exerciser", "rv32")


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "store"))


def fresh_config():
    return EngineConfig(collect_coverage=True)


class TestRunKey:
    def test_run_id_is_stable(self, kernel, store):
        model, image = kernel
        spec = spec_digest(model)
        key_a = run_key(model.name, spec, image, fresh_config(), "dfs",
                        0, [(0x8000, 64, False)])
        key_b = run_key(model.name, spec, image, fresh_config(), "dfs",
                        0, [(0x8000, 64, False)])
        assert store.run_id_for(key_a) == store.run_id_for(key_b)

    @pytest.mark.parametrize("mutate", [
        lambda k: k.__setitem__("seed", 1),
        lambda k: k.__setitem__("strategy", "bfs"),
        lambda k: k["config"].__setitem__("max_fork_targets", 2),
        lambda k: k["program"].__setitem__("data", "00"),
        lambda k: k.__setitem__("regions", [[0x9000, 64, False]]),
        lambda k: k.__setitem__("spec", "sha256:other"),
    ])
    def test_every_component_changes_the_id(self, kernel, store, mutate):
        model, image = kernel
        key = run_key(model.name, spec_digest(model), image,
                      fresh_config(), "dfs", 0, [(0x8000, 64, False)])
        base_id = store.run_id_for(key)
        mutate(key)
        assert store.run_id_for(key) != base_id

    def test_image_payload_round_trips(self, kernel):
        _, image = kernel
        clone = image_from_payload(image_payload(image))
        assert clone.base == image.base
        assert clone.entry == image.entry
        assert bytes(clone.data) == bytes(image.data)


class TestRecordAndDedup:
    def test_miss_then_hit(self, kernel, store):
        model, image = kernel
        result, stored, hit = cached_explore(store, model, image,
                                             fresh_config())
        assert not hit and stored is not None
        config = fresh_config()
        cached, stored2, hit2 = cached_explore(store, model, image,
                                               config)
        assert hit2 and stored2.run_id == stored.run_id
        assert config.obs.metrics.counter("store.hit").value == 1
        # Zero new solver checks: the hit path never builds an engine,
        # so the returned stats are the recorded ones, verbatim.
        assert cached.solver_stats == result.solver_stats
        assert len(cached.paths) == len(result.paths)
        assert [d.kind for d in cached.defects] == \
            [d.kind for d in result.defects]
        assert cached.visited_pcs == result.visited_pcs

    def test_hit_emits_store_event(self, kernel, store):
        from repro.obs import Obs, RingBufferSink
        model, image = kernel
        cached_explore(store, model, image, fresh_config())
        ring = RingBufferSink()
        obs = Obs(metrics=True)
        obs.add_sink(ring)
        cached_explore(store, model, image,
                       EngineConfig(collect_coverage=True, obs=obs))
        events = ring.events("store")
        assert len(events) == 1
        assert events[0].data["hit"] is True
        assert events[0].data["run_id"]

    def test_force_reexplores(self, kernel, store):
        model, image = kernel
        cached_explore(store, model, image, fresh_config())
        config = fresh_config()
        _, _, hit = cached_explore(store, model, image, config,
                                   force=True)
        assert not hit
        assert config.obs.metrics.counter("store.miss").value == 1

    def test_commit_is_atomic(self, kernel, store):
        model, image = kernel
        _, stored = record_exploration(store, model, image,
                                       fresh_config())
        # No temp dirs left behind; every artifact in place.
        assert not [n for n in os.listdir(store.runs_dir)
                    if n.startswith(".tmp-")]
        for artifact in ("manifest.json", "events.jsonl.gz",
                         "result.json", "solver_cache.json.gz"):
            assert os.path.exists(os.path.join(stored.path, artifact))

    def test_manifest_provenance(self, kernel, store):
        model, image = kernel
        _, stored = record_exploration(store, model, image,
                                       fresh_config(),
                                       argv=["record", "rv32", "x.s"])
        manifest = stored.manifest
        assert manifest["run_id"] == stored.run_id
        assert set(manifest["fingerprints"]) == \
            {"tree", "leaves", "defects"}
        assert set(manifest["key_digests"]) == \
            {"spec", "program", "config", "strategy"}
        env = manifest["env"]
        assert env["argv"] == ["record", "rv32", "x.s"]
        assert env["python"] and env["platform"]
        assert env["spec_digests"][model.name].startswith("sha256:")

    def test_recorded_events_readable(self, kernel, store):
        model, image = kernel
        result, stored = record_exploration(store, model, image,
                                            fresh_config())
        events = stored.events()
        assert any(e.kind == "step" for e in events)
        assert sum(1 for e in events if e.kind == "path_end") == \
            len(result.paths)


class TestLookupAndGc:
    def test_prefix_lookup(self, kernel, store):
        model, image = kernel
        _, stored = record_exploration(store, model, image,
                                       fresh_config())
        assert store.get(stored.run_id[:8]).run_id == stored.run_id
        assert store.get("feedfacedeadbeef") is None

    def test_ambiguous_prefix_raises(self, kernel, store):
        model, image = kernel
        record_exploration(store, model, image, fresh_config())
        record_exploration(store, model, image, fresh_config(), seed=1)
        ids = [run.run_id for run in store.list_runs()]
        # The empty prefix (or any shared one) matches both runs.
        with pytest.raises(RunStoreError):
            store.get(os.path.commonprefix(ids))

    def test_gc_keep(self, kernel, store):
        model, image = kernel
        for seed in range(3):
            record_exploration(store, model, image, fresh_config(),
                               seed=seed)
        deleted = store.gc(keep=1)
        assert len(deleted) == 2
        assert len(store.list_runs()) == 1

    def test_gc_older_than(self, kernel, store):
        model, image = kernel
        _, stored = record_exploration(store, model, image,
                                       fresh_config())
        # Backdate the manifest: gc must collect it.
        path = os.path.join(stored.path, "manifest.json")
        manifest = json.load(open(path))
        manifest["created"] -= 40 * 86400
        json.dump(manifest, open(path, "w"))
        assert store.gc(older_than_days=30) == [stored.run_id]

    def test_gc_sweeps_crashed_tmp_dirs(self, kernel, store):
        model, image = kernel
        record_exploration(store, model, image, fresh_config())
        crashed = os.path.join(store.runs_dir, ".tmp-dead-123")
        os.makedirs(crashed)
        store.gc()
        assert not os.path.exists(crashed)


class TestWarmStart:
    def test_warm_start_loads_entries_and_stays_deterministic(
            self, kernel, store):
        model, image = kernel
        _, source = record_exploration(store, model, image,
                                       fresh_config())
        _, warmed = record_exploration(store, model, image,
                                       fresh_config(), seed=3,
                                       warm_start=source.run_id[:8])
        assert warmed.manifest["warm_start"] == source.run_id
        assert warmed.manifest["warm_loaded"] > 0

    def test_unknown_warm_start_raises(self, kernel, store):
        model, image = kernel
        with pytest.raises(RunStoreError):
            record_exploration(store, model, image, fresh_config(),
                               warm_start="nope")
