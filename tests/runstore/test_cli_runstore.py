"""CLI surface of the run store: record / replay / runs / explore --store."""

import json
import os

import pytest

from repro.cli import main
from repro.programs.kernels import exerciser
from repro.programs.portable import lower

DEMO = """
.org 0x1000
.entry start
start:
    inb x1
    addi x2, x0, 7
    divu x3, x2, x1
    outb x3
    halt 0
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


@pytest.fixture
def exerciser_file(tmp_path):
    path = tmp_path / "exerciser.s"
    path.write_text(lower(exerciser(), "rv32"))
    return str(path)


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


def only_run_id(store_dir):
    runs = os.listdir(os.path.join(store_dir, "runs"))
    assert len(runs) == 1
    return runs[0]


class TestRecord:
    def test_record_then_replay_exit_0(self, exerciser_file, store_dir,
                                       capsys):
        assert main(["record", "rv32", exerciser_file,
                     "--store", store_dir]) == 2   # defect kernel
        out = capsys.readouterr().out
        assert "store: recorded" in out
        run_id = only_run_id(store_dir)
        assert main(["replay", run_id, "--store", store_dir]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_second_record_hits(self, demo_file, store_dir, capsys):
        assert main(["record", "rv32", demo_file,
                     "--store", store_dir]) == 2
        capsys.readouterr()
        assert main(["record", "rv32", demo_file,
                     "--store", store_dir]) == 2
        assert "store: hit" in capsys.readouterr().out

    def test_warm_start_flag(self, demo_file, store_dir, capsys):
        main(["record", "rv32", demo_file, "--store", store_dir])
        source = only_run_id(store_dir)
        capsys.readouterr()
        assert main(["record", "rv32", demo_file, "--store", store_dir,
                     "--seed", "4", "--warm-start", source[:8]]) == 2
        assert "warm-started from %s" % source in \
            capsys.readouterr().out


class TestReplayCli:
    def test_tampered_config_exits_3(self, demo_file, store_dir,
                                     capsys):
        main(["record", "rv32", demo_file, "--store", store_dir])
        run_id = only_run_id(store_dir)
        manifest_path = os.path.join(store_dir, "runs", run_id,
                                     "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["key"]["config"]["max_steps_per_path"] = 1
        json.dump(manifest, open(manifest_path, "w"))
        capsys.readouterr()
        assert main(["replay", run_id, "--store", store_dir,
                     "--diff"]) == 3
        out = capsys.readouterr().out
        assert "DIVERGED" in out and "key_digests.config" in out

    def test_unknown_run_exits_1(self, store_dir, capsys):
        assert main(["replay", "beefbeef", "--store", store_dir]) == 1
        assert "error:" in capsys.readouterr().err


class TestRunsCli:
    def test_list_and_show(self, demo_file, store_dir, capsys):
        main(["record", "rv32", demo_file, "--store", store_dir])
        run_id = only_run_id(store_dir)
        capsys.readouterr()
        assert main(["runs", "--store", store_dir]) == 0
        assert run_id in capsys.readouterr().out
        assert main(["runs", "--store", store_dir,
                     "--show", run_id[:8]]) == 0
        out = capsys.readouterr().out
        assert "fp.tree" in out and "python:" in out

    def test_empty_store(self, store_dir, capsys):
        assert main(["runs", "--store", store_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_gc_keep(self, demo_file, store_dir, capsys):
        main(["record", "rv32", demo_file, "--store", store_dir])
        main(["record", "rv32", demo_file, "--store", store_dir,
              "--seed", "1"])
        capsys.readouterr()
        assert main(["runs", "--store", store_dir, "--gc",
                     "--keep", "1"]) == 0
        assert "deleted 1 run" in capsys.readouterr().out


class TestExploreStore:
    def test_explore_store_dedup(self, demo_file, store_dir, capsys):
        assert main(["explore", "rv32", demo_file,
                     "--store", store_dir]) == 2
        first = capsys.readouterr().out
        assert "store: recorded" in first
        assert main(["explore", "rv32", demo_file,
                     "--store", store_dir]) == 2
        second = capsys.readouterr().out
        assert "store: hit" in second
        # The cached result still feeds the coverage report.
        assert "coverage:" in second

    def test_store_rejects_timing_dependent_flags(self, demo_file,
                                                  store_dir, capsys):
        assert main(["explore", "rv32", demo_file, "--store", store_dir,
                     "--max-seconds", "5"]) == 1
        assert "deterministic" in capsys.readouterr().err

    def test_store_env_override(self, demo_file, tmp_path, monkeypatch,
                                capsys):
        env_store = tmp_path / "envstore"
        monkeypatch.setenv("REPRO_STORE", str(env_store))
        # bare --store (no DIR) resolves via $REPRO_STORE
        assert main(["explore", "rv32", demo_file, "--store"]) == 2
        assert (env_store / "runs").exists()
