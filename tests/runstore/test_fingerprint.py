"""Canonical fingerprints: state-id remapping, stream digests, diffing.

The pin everything else rests on: two identical explorations run at
different points of a process lifetime (different raw state ids,
different timestamps) must produce IDENTICAL canonical fingerprints.
"""

from repro.obs.events import Event
from repro.runstore import (STRUCTURAL_KINDS, canonical_events,
                            defects_fingerprint, first_divergence,
                            leaves_fingerprint, tree_fingerprint)


def stream(offset=0, ts=0.0):
    """A small fork/merge/defect stream with ids shifted by ``offset``."""
    o = offset
    return [
        Event("step", "rv32", 0 + o, 0x1000, ts + 0.1),
        Event("fork", "rv32", 0 + o, 0x1004, ts + 0.2,
              {"children": [1 + o, 2 + o], "conds": ["x1==0", "x1!=0"]}),
        Event("step", "rv32", 1 + o, 0x1008, ts + 0.3),
        Event("solver_check", "rv32", 1 + o, 0x1008, ts + 0.31,
              {"result": "sat", "ms": 1.5}),
        Event("defect", "rv32", 1 + o, 0x1008, ts + 0.4,
              {"defect_kind": "division-by-zero"}),
        Event("path_end", "rv32", 1 + o, 0x100c, ts + 0.5,
              {"status": "halted", "exit_code": 0}),
        Event("prune", "rv32", 2 + o, 0x1010, ts + 0.6,
              {"reason": "max-states", "parent": 0 + o}),
    ]


class TestCanonicalEvents:
    def test_ids_remapped_to_first_appearance_order(self):
        canon = canonical_events(stream(offset=57))
        assert [e.state_id for e in canon] == [0, 0, 1, 1, 1, 2]

    def test_payload_ids_remapped_too(self):
        canon = canonical_events(stream(offset=57))
        fork = next(e for e in canon if e.kind == "fork")
        assert fork.data["children"] == [1, 2]
        prune = next(e for e in canon if e.kind == "prune")
        assert prune.data["parent"] == 0

    def test_timestamps_zeroed_and_timing_kinds_dropped(self):
        canon = canonical_events(stream())
        assert all(e.ts == 0.0 for e in canon)
        assert all(e.kind in STRUCTURAL_KINDS for e in canon)
        assert not any(e.kind == "solver_check" for e in canon)

    def test_shifted_streams_are_canonically_equal(self):
        assert canonical_events(stream(offset=0, ts=0.0)) == \
            canonical_events(stream(offset=99, ts=1234.5))


class TestFingerprints:
    def test_tree_fingerprint_invariant_under_id_shift(self):
        assert tree_fingerprint(stream(offset=0)) == \
            tree_fingerprint(stream(offset=1000, ts=50.0))

    def test_tree_fingerprint_sensitive_to_structure(self):
        mutated = stream()
        mutated[-1].data = {"reason": "trap", "parent": 0}
        assert tree_fingerprint(stream()) != tree_fingerprint(mutated)

    def test_leaves_fingerprint_order_and_content(self):
        paths = [{"status": "halted", "exit_code": 0, "input": "2a"},
                 {"status": "depth-limit", "exit_code": None,
                  "input": ""}]
        assert leaves_fingerprint(paths) == leaves_fingerprint(paths)
        assert leaves_fingerprint(paths) != \
            leaves_fingerprint(list(reversed(paths)))

    def test_defects_fingerprint_sensitive_to_site(self):
        base = [{"kind": "division-by-zero", "pc": 0x1008,
                 "instruction": "divu", "message": "m", "input": "00"}]
        moved = [dict(base[0], pc=0x100c)]
        assert defects_fingerprint(base) != defects_fingerprint(moved)


class TestFirstDivergence:
    def test_identical_streams_have_none(self):
        assert first_divergence(stream(), stream(offset=31)) is None

    def test_locates_first_differing_event(self):
        mutated = stream(offset=5)
        mutated[2] = Event("step", "rv32", 6, 0x9999, 0.3)
        index, left, right = first_divergence(stream(), mutated)
        assert index == 2
        assert left.pc == 0x1008 and right.pc == 0x9999

    def test_reports_early_stream_end(self):
        index, left, right = first_divergence(stream(), stream()[:-1])
        assert index == len(canonical_events(stream())) - 1
        assert left is not None and right is None
