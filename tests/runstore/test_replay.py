"""Deterministic replay: verification, tamper detection, divergence diff.

Acceptance pins:
* record -> replay round-trips rv32 AND mips32 exerciser runs with
  identical tree/leaf/defect fingerprints (exit code 0);
* a tampered run (edited program bytes or config) exits 3 and NAMES
  the diverging field.
"""

import json
import os

import pytest

from repro.core import EngineConfig
from repro.programs.kernels import build_kernel
from repro.runstore import (RunStore, RunStoreError,
                            record_exploration, replay_run)


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "store"))


def record(store, isa, **kwargs):
    model, image = build_kernel("exerciser", isa)
    _, stored = record_exploration(store, model, image,
                                   EngineConfig(collect_coverage=True),
                                   **kwargs)
    return stored


def tamper(stored, mutate):
    path = os.path.join(stored.path, "manifest.json")
    manifest = json.load(open(path))
    mutate(manifest)
    json.dump(manifest, open(path, "w"))


class TestRoundTrip:
    @pytest.mark.parametrize("isa", ["rv32", "mips32"])
    def test_record_replay_verifies(self, store, isa):
        stored = record(store, isa)
        report = replay_run(store, stored.run_id)
        assert report.ok and report.exit_code == 0
        assert report.fingerprints == stored.fingerprints
        assert report.executed

    def test_replay_by_prefix(self, store):
        stored = record(store, "rv32")
        assert replay_run(store, stored.run_id[:10]).ok

    def test_warm_started_run_replays(self, store):
        source = record(store, "rv32")
        warmed = record(store, "rv32", seed=5,
                        warm_start=source.run_id)
        assert replay_run(store, warmed.run_id).ok


class TestTamperDetection:
    def test_edited_program_bytes_exit_3_naming_field(self, store):
        stored = record(store, "rv32")

        def flip(manifest):
            data = manifest["key"]["program"]["data"]
            first = "00" if data[:2] != "00" else "ff"
            manifest["key"]["program"]["data"] = first + data[2:]

        tamper(stored, flip)
        report = replay_run(store, stored.run_id)
        assert report.exit_code == 3
        fields = [field for field, _, _ in report.mismatches]
        assert "key_digests.program" in fields
        assert not report.executed    # tampered runs are never executed
        assert "key_digests.program" in report.summary()

    def test_edited_config_exit_3_naming_field(self, store):
        stored = record(store, "rv32")
        tamper(stored, lambda m:
               m["key"]["config"].__setitem__("max_fork_targets", 2))
        report = replay_run(store, stored.run_id)
        assert report.exit_code == 3
        assert any(field == "key_digests.config"
                   for field, _, _ in report.mismatches)

    def test_consistent_tamper_caught_by_run_id(self, store):
        """Re-digesting the tampered key still cannot fake the
        content-addressed directory name."""
        from repro.runstore.store import key_digests
        stored = record(store, "rv32")

        def consistent(manifest):
            manifest["key"]["seed"] = 42
            manifest["key_digests"] = key_digests(manifest["key"])

        tamper(stored, consistent)
        report = replay_run(store, stored.run_id)
        assert report.exit_code == 3
        assert [field for field, _, _ in report.mismatches] == ["run_id"]

    def test_forged_fingerprint_diverges_with_diff(self, store):
        stored = record(store, "rv32")
        tamper(stored, lambda m:
               m["fingerprints"].__setitem__("tree", "sha256:forged"))
        report = replay_run(store, stored.run_id, diff=True)
        assert report.exit_code == 3
        assert any(field == "fingerprints.tree"
                   for field, _, _ in report.mismatches)
        # The actual event streams agree, so the diff finds nothing —
        # pinpointing the forgery to the manifest, not the execution.
        assert report.divergence is None


class TestErrors:
    def test_missing_run_raises(self, store):
        with pytest.raises(RunStoreError):
            replay_run(store, "cafebabe")

    def test_collected_warm_source_fails_honestly(self, store):
        source = record(store, "rv32")
        warmed = record(store, "rv32", seed=9,
                        warm_start=source.run_id)
        store.delete(source.run_id)
        with pytest.raises(RunStoreError):
            replay_run(store, warmed.run_id)
