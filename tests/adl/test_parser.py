"""Unit tests for the ADL parser."""

import pytest

from repro.adl import ast as A
from repro.adl.errors import AdlSyntaxError
from repro.adl.parser import parse_spec

MINIMAL = """
architecture toy {
  wordsize 16
  endian little
  regfile r[4] width 16
  pc width 16
  encoding e { a:4 b:4 op:8 }
  instruction add {
    encoding e
    match op = 1
    syntax "add {a:r}, {b:r}"
    semantics { r[a] = r[a] + r[b]; }
  }
}
"""


class TestSpecStructure:
    def test_minimal_parses(self):
        spec = parse_spec(MINIMAL)
        assert spec.name == "toy"
        assert spec.wordsize == 16
        assert spec.endian == "little"
        assert "r" in spec.regfiles
        assert spec.pc is not None and spec.pc.width == 16
        assert len(spec.instructions) == 1

    def test_regfile_options(self):
        spec = parse_spec("""
        architecture t { wordsize 32 pc width 32
          regfile x[32] width 32 prefix "g" zero 0
        }""")
        decl = spec.regfiles["x"]
        assert decl.count == 32 and decl.prefix == "g" and decl.zero_index == 0

    def test_regfile_default_prefix_is_name(self):
        spec = parse_spec("""
        architecture t { wordsize 32 pc width 32 regfile v[8] width 32 }""")
        assert spec.regfiles["v"].prefix == "v"

    def test_register_and_alias(self):
        spec = parse_spec("""
        architecture t { wordsize 32 pc width 32
          regfile r[16] width 32
          register Z width 1
          alias sp = r[13]
        }""")
        assert spec.registers["Z"].width == 1
        assert spec.aliases[0].alias == "sp"
        assert spec.aliases[0].index == 13

    def test_bad_endian_rejected(self):
        with pytest.raises(AdlSyntaxError):
            parse_spec("architecture t { endian middle }")

    def test_unknown_item_rejected(self):
        with pytest.raises(AdlSyntaxError):
            parse_spec("architecture t { bogus 3 }")

    def test_encoding_fields_in_order(self):
        spec = parse_spec(MINIMAL)
        assert [f.name for f in spec.encodings["e"].fields] == ["a", "b",
                                                                "op"]
        assert spec.encodings["e"].total_bits == 16


class TestInstructionClauses:
    def test_match_values(self):
        spec = parse_spec(MINIMAL)
        assert spec.instructions[0].match == {"op": 1}

    def test_multiple_match_values(self):
        spec = parse_spec(MINIMAL.replace("match op = 1",
                                          "match op = 1, a = 2"))
        assert spec.instructions[0].match == {"op": 1, "a": 2}

    def test_missing_encoding_rejected(self):
        bad = MINIMAL.replace("encoding e\n", "", 1).replace(
            "    encoding e", "")
        with pytest.raises(AdlSyntaxError):
            parse_spec(bad)

    def test_missing_syntax_rejected(self):
        bad = MINIMAL.replace('syntax "add {a:r}, {b:r}"', "")
        with pytest.raises(AdlSyntaxError):
            parse_spec(bad)

    def test_missing_semantics_rejected(self):
        bad = MINIMAL.replace("semantics { r[a] = r[a] + r[b]; }", "")
        with pytest.raises(AdlSyntaxError):
            parse_spec(bad)

    def test_operand_parts(self):
        spec = parse_spec(MINIMAL.replace(
            "match op = 1",
            "match op = 1\n    operand off = a :: b :: 0[1] signed pcrel"))
        operand = spec.instructions[0].operands[0]
        assert [p.field_name for p in operand.parts] == ["a", "b", None]
        assert operand.parts[2].zero_bits == 1
        assert operand.signed and operand.pcrel
        assert operand.pcrel_base == 0

    def test_operand_pcrel_base(self):
        spec = parse_spec(MINIMAL.replace(
            "match op = 1",
            "match op = 1\n    operand off = a signed pcrel 4"))
        assert spec.instructions[0].operands[0].pcrel_base == 4

    def test_operand_nonzero_padding_rejected(self):
        with pytest.raises(AdlSyntaxError):
            parse_spec(MINIMAL.replace(
                "match op = 1",
                "match op = 1\n    operand off = a :: 1[2]"))


class TestSemanticsStatements:
    def _semantics(self, body):
        spec = parse_spec(MINIMAL.replace("r[a] = r[a] + r[b];", body))
        return spec.instructions[0].semantics

    def test_assignment(self):
        stmts = self._semantics("pc = pc + 2;")
        assert isinstance(stmts[0], A.AAssign)
        assert isinstance(stmts[0].target, A.SName)

    def test_indexed_assignment(self):
        stmts = self._semantics("r[a] = 1;")
        assert isinstance(stmts[0].target, A.SIndex)

    def test_local(self):
        stmts = self._semantics("local t:16 = r[a]; r[b] = t;")
        assert isinstance(stmts[0], A.ALocal)
        assert stmts[0].width == 16

    def test_if_else(self):
        stmts = self._semantics(
            "if (r[a] == 0) { pc = 0; } else { pc = 2; }")
        assert isinstance(stmts[0], A.AIf)
        assert len(stmts[0].then_body) == 1
        assert len(stmts[0].else_body) == 1

    def test_else_if_chains(self):
        stmts = self._semantics(
            "if (r[a] == 0) { pc = 0; } else if (r[a] == 1) { pc = 2; }")
        assert isinstance(stmts[0].else_body[0], A.AIf)

    def test_store_out_halt_trap(self):
        stmts = self._semantics(
            "store(r[a], r[b], 2); out(extract(r[a],7,0)); halt(0); trap(1);")
        assert isinstance(stmts[0], A.AStore) and stmts[0].size == 2
        assert isinstance(stmts[1], A.AOut)
        assert isinstance(stmts[2], A.AHalt)
        assert isinstance(stmts[3], A.ATrap)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(AdlSyntaxError):
            self._semantics("r[a] = 1")


class TestSemanticsExpressions:
    def _expr(self, text):
        spec = parse_spec(MINIMAL.replace("r[a] + r[b]", text))
        return spec.instructions[0].semantics[0].value

    def test_precedence_mul_over_add(self):
        expr = self._expr("r[a] + r[b] * 2")
        assert expr.op == "add"
        assert expr.right.op == "mul"

    def test_precedence_compare_over_and(self):
        expr = self._expr("(r[a] == 0 && r[b] == 1) ? r[a] : r[b]")
        assert isinstance(expr, A.STernary)
        assert expr.cond.op == "and"
        assert expr.cond.left.op == "eq"

    def test_signed_operators(self):
        assert self._expr("r[a] <s r[b] ? r[a] : r[b]").cond.op == "slt"
        assert self._expr("r[a] >>s 1").op == "ashr"
        assert self._expr("r[a] /s r[b]").op == "sdiv"
        assert self._expr("r[a] %s r[b]").op == "srem"

    def test_unary_operators(self):
        assert self._expr("~r[a]").op == "not"
        assert self._expr("-r[a]").op == "neg"

    def test_negative_literal_folds(self):
        expr = self._expr("-5")
        assert isinstance(expr, A.SLit) and expr.value == -5

    def test_builtins(self):
        expr = self._expr("sext(r[a], 32)")
        assert isinstance(expr, A.SCall) and expr.name == "sext"
        expr = self._expr("load(r[a], 2)")
        assert expr.name == "load"

    def test_in_builtin(self):
        expr = self._expr("in()")
        assert isinstance(expr, A.SCall) and expr.args == []

    def test_parenthesized_grouping(self):
        expr = self._expr("(r[a] + r[b]) * 2")
        assert expr.op == "mul"
        assert expr.left.op == "add"

    def test_char_literal_expression(self):
        expr = self._expr("'A'")
        assert isinstance(expr, A.SLit) and expr.value == 65
