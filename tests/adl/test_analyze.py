"""Unit tests for ADL semantic analysis (layout, references, ambiguity)."""

import pytest

from repro.adl import load_builtin_spec
from repro.adl.analyze import analyze, syntax_placeholders
from repro.adl.errors import AdlSemanticError
from repro.adl.parser import parse_spec


def _spec(body):
    return parse_spec("architecture t {\n%s\n}" % body)


GOOD_HEAD = """
  wordsize 16
  endian little
  regfile r[4] width 16
  pc width 16
  encoding e { a:4 b:4 op:8 }
"""

GOOD_INSTR = """
  instruction add {
    encoding e
    match op = 1
    syntax "add {a:r}, {b:r}"
    semantics { r[a] = r[a] + r[b]; }
  }
"""


class TestGlobalChecks:
    def test_good_spec_analyzes(self):
        analyze(_spec(GOOD_HEAD + GOOD_INSTR))

    def test_missing_wordsize_rejected(self):
        bad = GOOD_HEAD.replace("wordsize 16", "") + GOOD_INSTR
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_missing_pc_rejected(self):
        bad = GOOD_HEAD.replace("pc width 16", "") + GOOD_INSTR
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_zero_index_out_of_range(self):
        bad = GOOD_HEAD.replace("regfile r[4] width 16",
                                "regfile r[4] width 16 zero 4") + GOOD_INSTR
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_alias_unknown_regfile(self):
        bad = GOOD_HEAD + "alias sp = q[2]\n" + GOOD_INSTR
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_alias_index_out_of_range(self):
        bad = GOOD_HEAD + "alias sp = r[9]\n" + GOOD_INSTR
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_register_colliding_with_regfile(self):
        bad = GOOD_HEAD + "register r width 1\n" + GOOD_INSTR
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))


class TestEncodingLayout:
    def test_field_offsets_msb_first(self):
        spec = analyze(_spec(GOOD_HEAD + GOOD_INSTR))
        enc = spec.encodings["e"]
        assert enc.field("a").lsb == 12
        assert enc.field("b").lsb == 8
        assert enc.field("op").lsb == 0

    def test_non_byte_multiple_rejected(self):
        bad = GOOD_HEAD.replace("{ a:4 b:4 op:8 }", "{ a:4 op:8 }") \
            + GOOD_INSTR.replace("{b:r}", "{op}").replace("match op = 1",
                                                          "match b = 0")
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_duplicate_field_rejected(self):
        bad = GOOD_HEAD.replace("{ a:4 b:4 op:8 }", "{ a:4 a:4 op:8 }") \
            + GOOD_INSTR
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))


class TestInstructionChecks:
    def test_unknown_encoding(self):
        bad = GOOD_HEAD + GOOD_INSTR.replace("encoding e", "encoding zzz")
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_match_unknown_field(self):
        bad = GOOD_HEAD + GOOD_INSTR.replace("match op = 1",
                                             "match nosuch = 1")
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_match_value_too_wide(self):
        bad = GOOD_HEAD + GOOD_INSTR.replace("match op = 1",
                                             "match op = 0x100")
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_duplicate_instruction_name(self):
        with pytest.raises(AdlSemanticError):
            analyze(_spec(GOOD_HEAD + GOOD_INSTR
                          + GOOD_INSTR.replace("match op = 1",
                                               "match op = 2")))

    def test_syntax_unknown_placeholder(self):
        bad = GOOD_HEAD + GOOD_INSTR.replace("{b:r}", "{zz:r}")
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_syntax_references_fixed_field(self):
        bad = GOOD_HEAD + GOOD_INSTR.replace("{b:r}", "{op}").replace(
            "match op = 1", "match op = 1, b = 0")
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_unconstrained_field_rejected(self):
        # Field b neither matched nor referenced by the syntax.
        bad = GOOD_HEAD + GOOD_INSTR.replace(
            'syntax "add {a:r}, {b:r}"', 'syntax "add {a:r}"')
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_operand_covers_field(self):
        good = GOOD_HEAD + """
          instruction br {
            encoding e
            match op = 2
            operand off = a :: b signed pcrel
            syntax "br {off}"
            semantics { pc = pc + sext(off, 16); }
          }
        """
        spec = analyze(_spec(good))
        assert spec.instructions[0].operands[0].width == 8

    def test_operand_using_fixed_field_rejected(self):
        bad = GOOD_HEAD + """
          instruction br {
            encoding e
            match op = 2, a = 0
            operand off = a :: b
            syntax "br {off}"
            semantics { pc = pc + sext(off, 16); }
          }
        """
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_register_typed_operand_rejected(self):
        bad = GOOD_HEAD + """
          instruction br {
            encoding e
            match op = 2
            operand off = a :: b
            syntax "br {off:r}"
            semantics { pc = pc + sext(off, 16); }
          }
        """
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))


class TestDecodeAmbiguity:
    def test_same_pattern_rejected(self):
        bad = GOOD_HEAD + GOOD_INSTR + GOOD_INSTR.replace(
            "instruction add", "instruction add2")
        with pytest.raises(AdlSemanticError) as err:
            analyze(_spec(bad))
        assert "overlap" in str(err.value)

    def test_overlapping_masks_rejected(self):
        # One instruction fixes op=1; another fixes only a=1 -- a word with
        # op=1 and a=1 matches both.
        bad = GOOD_HEAD + GOOD_INSTR + """
          instruction other {
            encoding e
            match a = 1
            syntax "other {b:r}, {op}"
            semantics { r[b] = zext(op, 16); }
          }
        """
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_variable_length_prefix_conflict_detected(self):
        bad = """
          wordsize 16
          endian little
          regfile r[4] width 16
          pc width 16
          encoding one { op:8 }
          encoding two { imm:8 op:8 }
          instruction nop {
            encoding one
            match op = 7
            syntax "nop"
            semantics { }
          }
          instruction ldi {
            encoding two
            match op = 7
            syntax "ldi {imm}"
            semantics { r[0] = zext(imm, 16); }
          }
        """
        with pytest.raises(AdlSemanticError):
            analyze(_spec(bad))

    def test_variable_length_distinct_opcodes_ok(self):
        good = """
          wordsize 16
          endian little
          regfile r[4] width 16
          pc width 16
          encoding one { op:8 }
          encoding two { imm:8 op:8 }
          instruction nop {
            encoding one
            match op = 7
            syntax "nop"
            semantics { }
          }
          instruction ldi {
            encoding two
            match op = 8
            syntax "ldi {imm}"
            semantics { r[0] = zext(imm, 16); }
          }
        """
        analyze(_spec(good))


class TestBuiltinSpecs:
    @pytest.mark.parametrize("name", ["rv32", "mips32", "armlite", "vlx", "pred32"])
    def test_builtin_spec_analyzes(self, name):
        spec = load_builtin_spec(name)
        assert spec.instructions

    def test_placeholders_helper(self):
        found = list(syntax_placeholders("add {rd:x}, {rs1:x}, {imm}"))
        assert found == [("rd", "x"), ("rs1", "x"), ("imm", None)]


class TestAmbiguityDiagnostics:
    """The ambiguity rejection is deterministic and actionable: every
    overlapping pair is listed, sorted by name, with a witness word."""

    AMBIG = GOOD_HEAD + """
      instruction zmov {
        encoding e
        match op = 3, a = 0
        syntax "zmov {b:r}"
        semantics { r[b] = r[b]; }
      }
      instruction amov {
        encoding e
        match op = 3, b = 0
        syntax "amov {a:r}"
        semantics { r[a] = r[a]; }
      }
      instruction cmov {
        encoding e
        match op = 3, a = 1
        syntax "cmov {b:r}"
        semantics { r[b] = r[b]; }
      }
    """

    def test_every_pair_listed_sorted_with_witness(self):
        with pytest.raises(AdlSemanticError) as err:
            analyze(_spec(self.AMBIG))
        message = str(err.value)
        # zmov/amov and amov/cmov overlap; zmov/cmov cannot (a=0 vs a=1).
        assert "2 overlapping pairs" in message
        assert message.index("amov/cmov") < message.index("amov/zmov")
        assert "zmov/cmov" not in message
        assert "witness word" in message

    def test_witness_words_are_concrete_overlaps(self):
        with pytest.raises(AdlSemanticError) as err:
            analyze(_spec(self.AMBIG))
        spec = analyze(_spec(self.AMBIG), check_ambiguity=False)
        patterns = {i.name: i.pattern for i in spec.instructions}
        import re
        for left, right, word in re.findall(
                r"(\w+)/(\w+) \(witness word (0x[0-9a-f]+)\)",
                str(err.value)):
            value = int(word, 16)
            assert patterns[left].matches(value)
            assert patterns[right].matches(value)

    def test_message_stable_under_declaration_order(self):
        def reorder(text):
            # Move the last instruction block to the front.
            blocks = text.split("instruction")
            head, instrs = blocks[0], blocks[1:]
            shuffled = [instrs[-1]] + instrs[:-1]
            return head + "instruction" + "instruction".join(shuffled)

        with pytest.raises(AdlSemanticError) as first:
            analyze(_spec(self.AMBIG))
        with pytest.raises(AdlSemanticError) as second:
            analyze(_spec(reorder(self.AMBIG)))
        strip = lambda s: str(s).split(": ", 1)[-1]  # drop line prefix
        assert strip(first.value) == strip(second.value)

    def test_check_ambiguity_false_skips_the_gate(self):
        spec = analyze(_spec(self.AMBIG), check_ambiguity=False)
        assert all(i.pattern is not None for i in spec.instructions)

    def test_overlapping_pairs_helper(self):
        from repro.adl.analyze import overlapping_pairs
        spec = analyze(_spec(self.AMBIG), check_ambiguity=False)
        pairs = [(left.name, right.name)
                 for left, right, _, _ in overlapping_pairs(spec)]
        assert pairs == [("amov", "cmov"), ("amov", "zmov")]
