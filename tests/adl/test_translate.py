"""Unit tests for ADL semantics -> IR translation (widths, names, in())."""

import pytest

from repro.adl.analyze import analyze
from repro.adl.errors import AdlSemanticError
from repro.adl.parser import parse_spec
from repro.adl.translate import translate_instruction
from repro.ir import nodes as N

HEAD = """
  wordsize 16
  endian little
  regfile r[4] width 16
  register Z width 1
  pc width 16
  encoding e { a:4 b:4 op:8 }
"""


def _translate(body, operand=""):
    text = "architecture t {%s instruction i { encoding e\n match op = 1\n" \
           " %s syntax \"i {a:r}, {b:r}\"\n semantics { %s } } }" \
           % (HEAD, operand, body)
    spec = analyze(parse_spec(text))
    return translate_instruction(spec, spec.instructions[0])


class TestNameResolution:
    def test_regfile_element(self):
        block = _translate("r[a] = r[b];")
        stmt = block[0]
        assert isinstance(stmt, N.SetReg) and stmt.regfile == "r"
        assert isinstance(stmt.index, N.Field)
        assert isinstance(stmt.value, N.ReadReg)

    def test_pc_read_write(self):
        block = _translate("pc = pc + 2;")
        assert isinstance(block[0], N.SetPc)
        assert isinstance(block[0].value.left, N.Pc)

    def test_single_register(self):
        block = _translate("Z = r[a] == 0;")
        assert isinstance(block[0], N.SetReg) and block[0].index is None

    def test_field_reference(self):
        block = _translate("r[a] = zext(b, 16);")
        assert isinstance(block[0].value.operand, N.Field)

    def test_local_declaration_and_use(self):
        block = _translate("local t:16 = r[a]; r[b] = t;")
        assert isinstance(block[0], N.SetLocal)
        assert isinstance(block[1].value, N.Local)

    def test_local_shadowing_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("local a:16 = 0;")

    def test_unknown_name_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = mystery;")

    def test_assign_to_field_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("a = 1;")

    def test_bare_regfile_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = r;")

    def test_operand_width(self):
        block = _translate("pc = pc + sext(off, 16);",
                           operand="operand off = a :: b :: 0[1] signed\n")
        ext = block[0].value.right
        assert isinstance(ext, N.Ext)
        assert ext.operand.width == 9


class TestWidthDiscipline:
    def test_literal_adapts_to_register(self):
        block = _translate("r[a] = 5;")
        assert block[0].value.width == 16

    def test_literal_adapts_in_binop(self):
        block = _translate("r[a] = r[b] + 1;")
        assert block[0].value.right.width == 16

    def test_width_mismatch_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = zext(b, 8);")   # 8-bit into 16-bit register

    def test_mixed_width_binop_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = r[b] + a;")     # 16 + 4

    def test_explicit_extension_accepted(self):
        _translate("r[a] = r[b] + zext(a, 16);")

    def test_literal_too_wide_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = 0x10000;")      # 17 bits into 16

    def test_negative_literal_range(self):
        _translate("r[a] = r[b] + -32768;")
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = r[b] + -32769;")

    def test_comparison_yields_bool(self):
        block = _translate("Z = r[a] < r[b];")
        assert block[0].value.width == 1

    def test_if_condition_must_be_bool(self):
        with pytest.raises(AdlSemanticError):
            _translate("if (r[a]) { halt(0); }")

    def test_ternary_branches_same_width(self):
        block = _translate("r[a] = (r[b] == 0) ? 1 : 2;")
        assert isinstance(block[0].value, N.IteExpr)
        assert block[0].value.width == 16

    def test_store_value_width_checked(self):
        _translate("store(r[a], extract(r[b], 7, 0), 1);")
        with pytest.raises(AdlSemanticError):
            _translate("store(r[a], r[b], 1);")  # 16-bit value, 1 byte

    def test_halt_code_is_8_bits(self):
        with pytest.raises(AdlSemanticError):
            _translate("halt(r[a]);")
        _translate("halt(extract(r[a], 7, 0));")


class TestBuiltins:
    def test_sext_narrowing_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = sext(r[b], 8);")

    def test_extract_range_checked(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = zext(extract(r[b], 16, 0), 16);")

    def test_extract_requires_literals(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = zext(extract(r[b], a, 0), 16);")

    def test_concat(self):
        block = _translate("r[a] = concat(a, extract(r[b], 11, 0));")
        assert isinstance(block[0].value, N.ConcatBits)
        assert block[0].value.width == 16

    def test_load_size_literal_required(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = load(r[b], a);")

    def test_load_size_validated(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = zext(load(r[b], 3), 16);")

    def test_unknown_builtin_rejected(self):
        # Unknown call syntax is rejected at parse time (AdlError base).
        from repro.adl.errors import AdlError
        with pytest.raises(AdlError):
            _translate("r[a] = sqrt(r[b], 2);")


class TestInputDiscipline:
    def test_in_as_local_rhs(self):
        block = _translate("local v:8 = in(); r[a] = zext(v, 16);")
        assert isinstance(block[0].value, N.InputByte)

    def test_in_requires_8bit_target(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = in();")         # 16-bit register

    def test_in_nested_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("local v:8 = in() + 1;")

    def test_in_inside_call_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("r[a] = zext(in(), 16);")

    def test_in_with_args_rejected(self):
        with pytest.raises(AdlSemanticError):
            _translate("local v:8 = in(1);")


class TestIrValidationWiring:
    """Every translated rule is IR-validated unless explicitly disabled
    (the lint driver disables it so its ir-width pass owns reporting)."""

    def test_enabled_by_default(self):
        from repro.adl.translate import ir_validation_enabled
        assert ir_validation_enabled()

    def test_set_ir_validation_returns_previous(self):
        from repro.adl.translate import (ir_validation_enabled,
                                         set_ir_validation)
        previous = set_ir_validation(False)
        try:
            assert previous is True
            assert not ir_validation_enabled()
        finally:
            set_ir_validation(previous)
        assert ir_validation_enabled()

    def test_all_shipped_specs_validate_clean(self):
        from repro.adl import builtin_spec_names, load_builtin_spec
        from repro.ir import validate_block
        for name in builtin_spec_names():
            spec = load_builtin_spec(name)
            for instr in spec.instructions:
                # Raises AdlSemanticError on invalid IR (validation on).
                block = translate_instruction(spec, instr)
                validate_block(block)  # and the block really is valid

    def test_translation_remains_usable_when_disabled(self):
        from repro.adl.translate import set_ir_validation
        previous = set_ir_validation(False)
        try:
            block = _translate("r[a] = r[b];")
            assert block
        finally:
            set_ir_validation(previous)
