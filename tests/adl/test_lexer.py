"""Unit tests for the ADL tokenizer."""

import pytest

from repro.adl.errors import AdlSyntaxError
from repro.adl.lexer import TokenStream, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop eof


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_empty_gives_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_names_and_ints(self):
        assert kinds("foo 42 bar") == ["name", "int", "name"]

    def test_hex_literal(self):
        assert values("0xff") == [255]

    def test_hex_with_underscores(self):
        assert values("0xdead_beef") == [0xDEADBEEF]

    def test_binary_literal(self):
        assert values("0b1010") == [10]

    def test_decimal_with_underscores(self):
        assert values("1_000_000") == [1000000]

    def test_string_literal(self):
        assert values('"add {rd}, {rs1}"') == ["add {rd}, {rs1}"]

    def test_string_with_escapes(self):
        assert values(r'"a\nb"') == ["a\nb"]

    def test_unterminated_string_rejected(self):
        with pytest.raises(AdlSyntaxError):
            tokenize('"unclosed')

    def test_char_literal(self):
        assert values("'A'") == [65]

    def test_char_escape(self):
        assert values(r"'\n'") == [10]
        assert values(r"'\0'") == [0]

    def test_bad_char_escape_rejected(self):
        with pytest.raises(AdlSyntaxError):
            tokenize(r"'\q'")

    def test_comment_stripped(self):
        assert kinds("a # comment here\nb") == ["name", "name"]

    def test_unexpected_character_rejected(self):
        with pytest.raises(AdlSyntaxError):
            tokenize("a $ b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3


class TestOperators:
    def test_signed_operators_longest_match(self):
        assert [t.text for t in tokenize("a <=s b")][:-1] == ["a", "<=s", "b"]

    def test_signed_suffix_not_eating_names(self):
        # '<sel' must lex as '<' then name 'sel', not '<s' 'el'.
        texts = [t.text for t in tokenize("a <sel")][:-1]
        assert texts == ["a", "<", "sel"]

    def test_shift_operators(self):
        assert [t.text for t in tokenize(">> >>s <<")][:-1] == [
            ">>", ">>s", "<<"]

    def test_concat_operator(self):
        assert [t.text for t in tokenize("hi :: lo")][:-1] == [
            "hi", "::", "lo"]

    def test_comparison_chain(self):
        assert [t.text for t in tokenize("== != <= >=")][:-1] == [
            "==", "!=", "<=", ">="]


class TestTokenStream:
    def test_expect_success(self):
        stream = TokenStream(tokenize("architecture rv32"))
        assert stream.expect_keyword("architecture").text == "architecture"
        assert stream.expect("name").text == "rv32"

    def test_expect_failure_has_location(self):
        stream = TokenStream(tokenize("architecture 42"))
        stream.next()
        with pytest.raises(AdlSyntaxError) as err:
            stream.expect("name")
        assert "42" in str(err.value)

    def test_accept_returns_none_on_mismatch(self):
        stream = TokenStream(tokenize("x"))
        assert stream.accept("int") is None
        assert stream.accept("name") is not None

    def test_peek_does_not_consume(self):
        stream = TokenStream(tokenize("a b"))
        assert stream.peek().text == "a"
        assert stream.peek(1).text == "b"
        assert stream.next().text == "a"

    def test_next_at_eof_stays_at_eof(self):
        stream = TokenStream(tokenize(""))
        assert stream.next().kind == "eof"
        assert stream.next().kind == "eof"
