"""Differential testing: symbolic vs concrete execution of every
generated instruction.

For every instruction of every ISA we synthesize random instances (random
free-field values), run one step on (a) the concrete simulator and (b) the
symbolic executor seeded with the same fully-concrete state, and require
bit-identical results: registers, flags, memory, next pc, halt/trap,
output, input consumption.

This is the soundness check behind the paper's generation claim: the
symbolic transfer functions derived from the ADL agree with the concrete
reference semantics on every instruction.
"""

import random

import pytest

from repro.core import Engine, EngineConfig
from repro.core.memory import MemoryMap, Region, SymMemory
from repro.core.state import SymState
from repro.ir import interp
from repro.isa import build
from repro.isa.simulator import MachineState
from repro.smt import terms as T

ALL_TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]
INSTANCES_PER_INSTRUCTION = 3


def _random_fields(model, instr, rng):
    """Random values for every free encoding field.

    Fields used as register indices are drawn from the regfile's valid
    range (a 4-bit field over an 8-register file would otherwise produce
    architecturally-invalid indices, e.g. on vlx).
    """
    from repro.adl.analyze import syntax_placeholders
    reg_fields = {name: kind
                  for name, kind in syntax_placeholders(instr.syntax)
                  if kind is not None}
    fields = {}
    for field in instr.encoding.fields:
        if field.name in instr.decl.match:
            continue
        regfile = reg_fields.get(field.name)
        if regfile is not None:
            fields[field.name] = rng.randrange(model.regfiles[regfile].count)
        else:
            fields[field.name] = rng.getrandbits(field.width)
    return fields


def _random_machine(model, rng, input_bytes):
    machine = MachineState(model, input_bytes=input_bytes)
    for name, info in model.regfiles.items():
        for index in range(info.count):
            machine.write_reg(name, index, rng.getrandbits(info.width))
    for name, width in model.registers.items():
        machine.write_reg(name, None, rng.getrandbits(width))
    # A spread of initialized memory (the whole space reads as 0 anyway).
    for _ in range(32):
        addr = rng.randrange(0, 1 << model.pc_width)
        machine.memory[addr] = rng.getrandbits(8)
    machine.pc = 0x1000
    return machine


def _mirror_state(model, machine, input_bytes):
    """A SymState with exactly the concrete machine's contents."""
    memory_map = MemoryMap([Region(0, 1 << model.pc_width, "all")])
    memory = SymMemory(memory_map)
    for addr, value in machine.memory.items():
        memory.write_byte(addr, T.bv(value, 8))
    state = SymState(model, memory)
    state.pc = machine.pc
    for name, info in model.regfiles.items():
        for index in range(info.count):
            value = machine.regfiles[name][index]
            if info.zero_index is not None and index == info.zero_index:
                value = 0
            state.regfiles[name][index] = T.bv(value, info.width)
    for name, width in model.registers.items():
        state.registers[name] = T.bv(machine.registers[name], width)
    return state


def _engine(model):
    config = EngineConfig(check_div_zero=False, check_oob=False,
                          check_uninit=False, check_write_protect=False)
    engine = Engine(model, config=config)
    engine.memory_map.add(Region(0, 1 << model.pc_width, "all"))
    return engine


def _assert_states_agree(model, machine, state, env, context):
    for name, info in model.regfiles.items():
        for index in range(info.count):
            sym = state.read_reg(name, index)
            assert T.evaluate(sym, env) == machine.read_reg(name, index), (
                context, name, index)
    for name in model.registers:
        sym = state.read_reg(name, None)
        assert T.evaluate(sym, env) == machine.read_reg(name, None), (
            context, name)


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_every_instruction_symbolic_matches_concrete(target):
    model = build(target)
    rng = random.Random(hash(target) & 0xffff)
    engine = _engine(model)
    for instr in model.instructions:
        for round_no in range(INSTANCES_PER_INSTRUCTION):
            context = "%s/%s#%d" % (target, instr.name, round_no)
            fields = _random_fields(model, instr, rng)
            word = instr.assemble_word(fields)
            decoded_fields = instr.bind(word)
            input_bytes = bytes(rng.getrandbits(8) for _ in range(4))

            machine = _random_machine(model, rng, input_bytes)
            state = _mirror_state(model, machine, input_bytes)

            concrete = interp.exec_block(instr.semantics, machine,
                                         decoded_fields)

            class _FakeDecoded:
                instruction = instr
                address = 0x1000
                length = instr.length
            _FakeDecoded.fields = decoded_fields

            finished = engine._exec_block(state, _FakeDecoded)
            assert len(finished) == 1, (context, "fully concrete state "
                                        "must not fork")
            sym_state, outcome = finished[0]

            # Input reads become symbolic variables; evaluating every
            # symbolic result under the concrete input assignment must
            # reproduce the concrete machine exactly.
            env = {"in_%d" % i: b for i, b in enumerate(input_bytes)}

            assert outcome.halted == concrete.halted, context
            assert outcome.trapped == concrete.trapped, context
            if concrete.halted:
                assert T.evaluate(outcome.exit_code, env) \
                    == concrete.exit_code, context
            if concrete.trapped:
                assert T.evaluate(outcome.trap_code, env) \
                    == concrete.trap_code, context
            if concrete.next_pc is None:
                assert outcome.next_pc is None, context
            else:
                assert outcome.next_pc is not None, context
                mask = (1 << model.pc_width) - 1
                assert T.evaluate(outcome.next_pc, env) & mask \
                    == concrete.next_pc & mask, context

            _assert_states_agree(model, machine, sym_state, env, context)

            # Memory written concretely must match symbolically.
            for addr, value in machine.memory.items():
                sym_byte = sym_state.memory.read_byte(addr)
                assert T.evaluate(sym_byte, env) == value, (
                    context, hex(addr))

            # Output and input-consumption agreement.
            assert len(sym_state.output) == len(machine.output), context
            for sym_byte, conc_byte in zip(sym_state.output, machine.output):
                assert T.evaluate(sym_byte, env) == conc_byte, context
            assert len(sym_state.input_vars) == machine.input_cursor, context


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_simulator_matches_engine_on_full_kernels(target):
    """Whole-program agreement: simulator output/exit == the engine's
    concrete path (via concolic single run) for fixed inputs."""
    from repro.core.concolic import ConcolicExplorer
    from repro.isa import run_image
    from repro.programs import build_kernel

    model, image = build_kernel("checksum", target, length=3)
    test_input = b"\x11\x22\x33"
    sim = run_image(model, image, input_bytes=test_input)
    engine = Engine(model)
    engine.load_image(image)
    explorer = ConcolicExplorer(engine)
    result = explorer.explore(seed=test_input, max_runs=1)
    assert explorer.runs[0].status == "halted"
    path = result.paths[0]
    assert path.exit_code == sim.exit_code


# -- solver-cache soundness across ISAs ------------------------------------
#
# The query cache + incremental check reuse must be *observationally
# invisible*: running the whole defect suite with the cache on and off
# must produce identical defect reports, path counts and leaf states.
# Inputs witnessing a path may legitimately differ (any model of the
# path condition is a valid witness), so they are compared for validity
# elsewhere (tests/smt/test_cache_differential.py), not for equality.

def _suite_fingerprint(target, use_cache):
    """Canonical exploration fingerprint of the defect suite."""
    from repro.programs import all_cases, run_case

    fingerprint = []
    for case in all_cases():
        for variant in ("bad", "good"):
            config = EngineConfig(max_steps_per_path=4096,
                                  use_solver_cache=use_cache)
            detected, result, _image = run_case(case, target, variant,
                                                config=config)
            defects = sorted((d.kind, d.pc, d.instruction)
                             for d in result.defects)
            leaves = sorted((p.status, p.state.pc, p.exit_code,
                             len(p.state.path_condition),
                             len(p.state.input_vars))
                            for p in result.paths)
            fingerprint.append((case.name, variant, detected,
                                result.stop_reason, defects, leaves))
    return fingerprint


@pytest.mark.parametrize("target", ["rv32", "mips32"])
def test_defect_suite_identical_with_and_without_solver_cache(target):
    cached = _suite_fingerprint(target, use_cache=True)
    uncached = _suite_fingerprint(target, use_cache=False)
    assert cached == uncached
