"""Integration test for the protocol-parser case study.

The engine must chain magic + type + length-bound + checksum conditions
to reach both planted bugs, and the synthesized packets must be
well-formed (valid magic/checksum) — i.e. real exploits, not noise.
"""

import pytest

from repro import core
from repro.core import Engine, EngineConfig
from repro.isa import assemble, build, run_image
from repro.programs.parser_demo import BUFFER_SIZE, MAGIC, protocol_parser
from repro.programs.portable import lower
from repro.programs.suite import CODE_BASE


_CACHE = {}


def explore(target, bad):
    """Explorations are deterministic; cache them across the module."""
    key = (target, bad)
    if key not in _CACHE:
        model = build(target)
        image = assemble(model, lower(protocol_parser(bad), target),
                         base=CODE_BASE)
        engine = Engine(model, config=EngineConfig(max_states=4096))
        engine.load_image(image)
        _CACHE[key] = (model, image, engine.explore())
    return _CACHE[key]


def checksum_of(payload):
    value = 0
    for byte in payload:
        value ^= byte
    return value


@pytest.mark.parametrize("target", ["rv32", "vlx"])
class TestBadParser:
    def test_both_bugs_found(self, target):
        _, _, result = explore(target, bad=True)
        assert result.first_defect(core.OOB_ACCESS) is not None
        assert result.first_defect(core.DIV_BY_ZERO) is not None

    def test_overflow_packet_is_well_formed(self, target):
        _, _, result = explore(target, bad=True)
        packet = result.first_defect(core.OOB_ACCESS).input_bytes
        assert packet[0] == MAGIC                  # header accepted
        assert packet[1] == 1                      # store handler
        length = packet[2] & 31
        assert length > BUFFER_SIZE                # overlong
        payload = packet[3:3 + length]
        # The OOB fires at buf[16], so at least 17 payload bytes plus the
        # checksum were consumed and the checksum gate was passed.
        assert packet[3 + length] == checksum_of(payload)

    def test_div_zero_packet_sums_to_zero(self, target):
        _, _, result = explore(target, bad=True)
        packet = result.first_defect(core.DIV_BY_ZERO).input_bytes
        assert packet[0] == MAGIC and packet[1] == 2
        length = packet[2] & 31
        payload = packet[3:3 + length]
        assert sum(payload) % (1 << 16) == 0


@pytest.mark.parametrize("target", ["rv32", "vlx"])
class TestFixedParser:
    def test_no_findings(self, target):
        _, _, result = explore(target, bad=False)
        assert not result.defects

    def test_valid_echo_packet_runs_concretely(self, target):
        model = build(target)
        image = assemble(model, lower(protocol_parser(False), target),
                         base=CODE_BASE)
        payload = b"hey"
        packet = bytes([MAGIC, 0, len(payload)]) + payload + bytes(
            [checksum_of(payload)])
        sim = run_image(model, image, input_bytes=packet)
        assert sim.exit_code == 0
        assert sim.output == payload

    def test_bad_checksum_rejected(self, target):
        model = build(target)
        image = assemble(model, lower(protocol_parser(False), target),
                         base=CODE_BASE)
        packet = bytes([MAGIC, 0, 2, 1, 2, 0xFF])   # wrong checksum
        sim = run_image(model, image, input_bytes=packet)
        assert sim.exit_code == 1                    # rejected

    def test_overlong_store_rejected(self, target):
        model = build(target)
        image = assemble(model, lower(protocol_parser(False), target),
                         base=CODE_BASE)
        payload = bytes(range(20))
        packet = bytes([MAGIC, 1, len(payload)]) + payload + bytes(
            [checksum_of(payload)])
        sim = run_image(model, image, input_bytes=packet)
        assert sim.exit_code == 1
