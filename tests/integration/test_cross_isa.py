"""Cross-ISA consistency (the Figure 3 experiment as a test).

The same portable defect program runs on every ISA.  An input that
triggers the defect on ISA A must trigger the *same defect class* when
replayed on every other ISA — the defects are input-level properties of
the program, so the generated engines must agree on them.
"""

import pytest

from repro.core import Engine, EngineConfig
from repro.core.concolic import ConcolicExplorer
from repro.isa import assemble, build, run_image
from repro.programs import suite
from repro.programs.portable import lower

ALL_TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]

# Cases whose triggering input transfers verbatim across ISAs.  (All of
# them do: the portable layer fixes buffer sizes and magic values.)
TRANSFER_CASES = ["div_by_zero", "oob_write", "oob_read", "underflow_wrap",
                  "off_by_one", "magic_trap", "tainted_jump"]


def _find_input(case, target):
    detected, result, _ = suite.run_case(case, target, "bad")
    assert detected
    return result.first_defect(case.defect_kind).input_bytes


def _replay_symbolic(case, target, input_bytes):
    """Replay an input on ``target`` concretely (with checkers) via a
    single-run concolic execution; returns defect kinds found."""
    model = build(target)
    image = assemble(model, lower(case.build("bad"), target),
                     base=suite.CODE_BASE)
    config = EngineConfig()
    if case.needs_uninit_check:
        config.check_uninit = True
    if case.needs_taint_check:
        config.check_tainted_control = True
    engine = Engine(model, config=config)
    engine.load_image(image)
    for start, size, track_uninit in case.extra_regions:
        engine.add_region(start, size, track_uninit=track_uninit)
    explorer = ConcolicExplorer(engine)
    result = explorer.explore(seed=input_bytes, max_runs=1)
    return {defect.kind for defect in result.defects}


@pytest.mark.parametrize("case_name", TRANSFER_CASES)
def test_triggering_inputs_transfer_across_isas(case_name):
    case = suite.case_by_name(case_name)
    inputs = {target: _find_input(case, target) for target in ALL_TARGETS}
    for source in ALL_TARGETS:
        for destination in ALL_TARGETS:
            kinds = _replay_symbolic(case, destination, inputs[source])
            assert case.defect_kind in kinds, (
                "input %r found on %s does not reproduce %s on %s"
                % (inputs[source], source, case.defect_kind, destination))


def test_magic_trap_concrete_replay_everywhere():
    """The trap case is also checkable on the plain simulator."""
    case = suite.case_by_name("magic_trap")
    trigger = _find_input(case, "rv32")
    for target in ALL_TARGETS:
        model = build(target)
        image = assemble(model, lower(case.build("bad"), target),
                         base=suite.CODE_BASE)
        sim = run_image(model, image, input_bytes=trigger)
        assert sim.trapped, target


def test_outputs_agree_across_isas():
    """Halting portable programs produce identical output bytes on all
    ISAs under the same input."""
    from repro.programs import build_kernel
    for input_bytes in (b"\x00\x01\x02", b"abc", b"\xff\xfe\xfd"):
        outputs = set()
        for target in ALL_TARGETS:
            model, image = build_kernel("checksum", target, length=3)
            sim = run_image(model, image, input_bytes=input_bytes)
            outputs.add((bytes(sim.output), sim.exit_code, sim.trapped))
        assert len(outputs) == 1, outputs
