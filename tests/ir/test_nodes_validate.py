"""Unit tests for IR node construction and validation."""

import pytest

from repro.ir import IrError, count_nodes, format_block, format_expr
from repro.ir import nodes as N
from repro.ir import validate_block, validate_expr


def c32(value):
    return N.Const(value, 32)


class TestNodeConstruction:
    def test_const_masks(self):
        assert N.Const(0x1_0000_0001, 32).value == 1

    def test_widths(self):
        assert N.Load(c32(0), 4).width == 32
        assert N.ExtractBits(c32(0), 15, 8).width == 8
        assert N.ConcatBits(c32(0), N.Const(0, 8)).width == 40
        assert N.Ext("zext", N.Const(0, 8), 32).width == 32
        assert N.IteExpr(N.Const(1, 1), c32(1), c32(2)).width == 32

    def test_children(self):
        binop = N.BinOp("add", c32(1), c32(2), 32)
        assert len(binop.children()) == 2
        assert N.Pc(32).children() == ()

    def test_repr_does_not_crash(self):
        for node in (c32(5), N.Field("rd", 5), N.Local("t", 32), N.Pc(32),
                     N.InputByte(), N.Load(c32(0), 4),
                     N.BinOp("add", c32(1), c32(2), 32),
                     N.UnOp("not", c32(1), 32),
                     N.Ext("sext", N.Const(0, 8), 32),
                     N.ExtractBits(c32(0), 7, 0),
                     N.ConcatBits(c32(0), c32(0)),
                     N.IteExpr(N.Const(1, 1), c32(1), c32(2))):
            assert repr(node)


class TestValidateExpr:
    def test_good_binop(self):
        validate_expr(N.BinOp("add", c32(1), c32(2), 32))

    def test_width_mismatch(self):
        with pytest.raises(IrError):
            validate_expr(N.BinOp("add", c32(1), N.Const(2, 16), 32))

    def test_bad_result_width(self):
        with pytest.raises(IrError):
            validate_expr(N.BinOp("add", c32(1), c32(2), 16))

    def test_comparison_result_must_be_bool(self):
        with pytest.raises(IrError):
            validate_expr(N.BinOp("eq", c32(1), c32(2), 32))
        validate_expr(N.BinOp("eq", c32(1), c32(2), 1))

    def test_unknown_op(self):
        with pytest.raises(IrError):
            validate_expr(N.BinOp("frobnicate", c32(1), c32(2), 32))

    def test_boolnot_width(self):
        with pytest.raises(IrError):
            validate_expr(N.UnOp("boolnot", c32(1), 32))
        validate_expr(N.UnOp("boolnot", N.Const(1, 1), 1))

    def test_ext_narrowing_rejected(self):
        with pytest.raises(IrError):
            validate_expr(N.Ext("zext", c32(0), 16))

    def test_bad_ext_kind(self):
        with pytest.raises(IrError):
            validate_expr(N.Ext("wext", N.Const(0, 8), 16))

    def test_extract_bounds(self):
        with pytest.raises(IrError):
            validate_expr(N.ExtractBits(N.Const(0, 8), 8, 0))

    def test_ite_condition_width(self):
        with pytest.raises(IrError):
            validate_expr(N.IteExpr(c32(1), c32(1), c32(2)))

    def test_ite_branch_widths(self):
        with pytest.raises(IrError):
            validate_expr(N.IteExpr(N.Const(1, 1), c32(1), N.Const(0, 16)))

    def test_load_size(self):
        with pytest.raises(IrError):
            validate_expr(N.Load(c32(0), 3))


class TestValidateBlock:
    def test_good_block(self):
        validate_block([
            N.SetLocal("t", c32(1)),
            N.SetReg("x", N.Field("rd", 5), c32(0)),
            N.SetPc(c32(0x1000)),
            N.Store(c32(0x2000), N.Const(7, 8), 1),
            N.Output(N.Const(65, 8)),
            N.IfStmt(N.Const(1, 1), [N.Halt(N.Const(0, 8))],
                     [N.Trap(N.Const(1, 8))]),
        ])

    def test_store_width_mismatch(self):
        with pytest.raises(IrError):
            validate_block([N.Store(c32(0), c32(0), 1)])

    def test_store_bad_size(self):
        with pytest.raises(IrError):
            validate_block([N.Store(c32(0), N.Const(0, 24), 3)])

    def test_if_condition_checked(self):
        with pytest.raises(IrError):
            validate_block([N.IfStmt(c32(1), [], [])])

    def test_nested_bodies_checked(self):
        with pytest.raises(IrError):
            validate_block([N.IfStmt(N.Const(1, 1),
                                     [N.Store(c32(0), c32(0), 1)], [])])


class TestPrinter:
    def test_format_expr_shapes(self):
        expr = N.BinOp("add", N.ReadReg("x", N.Field("rs1", 5), 32),
                       N.Ext("sext", N.Field("imm", 12), 32), 32)
        text = format_expr(expr)
        assert "x[$rs1]" in text and "sext" in text and "+" in text

    def test_format_block_if(self):
        block = [N.IfStmt(N.BinOp("eq", c32(0), c32(0), 1),
                          [N.SetPc(c32(4))], [N.Halt(N.Const(0, 8))])]
        text = format_block(block)
        assert "if" in text and "pc =" in text and "else" in text

    def test_count_nodes(self):
        block = [N.SetReg("x", N.Field("rd", 5),
                          N.BinOp("add", c32(1), c32(2), 32))]
        # SetReg + Field + BinOp + 2 consts = 5
        assert count_nodes(block) == 5

    def test_count_nodes_nested_if(self):
        block = [N.IfStmt(N.Const(1, 1), [N.Halt(N.Const(0, 8))], [])]
        assert count_nodes(block) == 4
