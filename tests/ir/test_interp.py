"""Unit tests for the concrete IR interpreter."""

import pytest

from repro.ir import interp
from repro.ir import nodes as N


class FakeMachine(interp.MachineContext):
    """Dict-backed machine for interpreter tests."""

    def __init__(self, pc=0x1000, input_bytes=b""):
        self.regs = {}
        self.single = {}
        self.mem = {}
        self.pc = pc
        self.inputs = list(input_bytes)
        self.outputs = []

    def read_reg(self, regfile, index):
        if index is None:
            return self.single.get(regfile, 0)
        return self.regs.get((regfile, index), 0)

    def write_reg(self, regfile, index, value):
        if index is None:
            self.single[regfile] = value
        else:
            self.regs[(regfile, index)] = value

    def load(self, addr, size):
        value = 0
        for i in range(size):
            value |= self.mem.get(addr + i, 0) << (8 * i)
        return value

    def store(self, addr, value, size):
        for i in range(size):
            self.mem[addr + i] = (value >> (8 * i)) & 0xff

    def input_byte(self):
        return self.inputs.pop(0) if self.inputs else 0

    def output_byte(self, value):
        self.outputs.append(value)

    def current_pc(self):
        return self.pc


def c32(value):
    return N.Const(value, 32)


def run(stmts, machine=None, fields=None):
    machine = machine or FakeMachine()
    outcome = interp.exec_block(stmts, machine, fields or {})
    return machine, outcome


class TestEvalExpr:
    def _eval(self, expr, machine=None, fields=None):
        return interp.eval_expr(expr, machine or FakeMachine(),
                                fields or {}, {})

    def test_const_field_local(self):
        assert self._eval(c32(7)) == 7
        assert self._eval(N.Field("imm", 12), fields={"imm": 0xabc}) == 0xabc

    def test_field_masked_to_width(self):
        assert self._eval(N.Field("imm", 4), fields={"imm": 0x1f}) == 0xf

    def test_pc(self):
        machine = FakeMachine(pc=0x2000)
        assert self._eval(N.Pc(32), machine) == 0x2000

    def test_readreg(self):
        machine = FakeMachine()
        machine.regs[("x", 3)] = 99
        assert self._eval(N.ReadReg("x", c32(3), 32), machine) == 99

    def test_load(self):
        machine = FakeMachine()
        machine.mem.update({0x100: 0x34, 0x101: 0x12})
        assert self._eval(N.Load(c32(0x100), 2), machine) == 0x1234

    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 0xffffffff, 1, 0),
        ("sub", 0, 1, 0xffffffff),
        ("mul", 0x10000, 0x10000, 0),
        ("udiv", 7, 2, 3),
        ("udiv", 7, 0, 0xffffffff),
        ("urem", 7, 0, 7),
        ("sdiv", 0xfffffff9, 2, 0xfffffffd),   # -7/2 = -3
        ("srem", 0xfffffff9, 2, 0xffffffff),   # -7%2 = -1
        ("and", 0xff00, 0x0ff0, 0x0f00),
        ("or", 1, 2, 3),
        ("xor", 5, 3, 6),
        ("shl", 1, 33, 0),
        ("lshr", 0x80000000, 31, 1),
        ("ashr", 0x80000000, 31, 0xffffffff),
        ("ashr", 0x80000000, 99, 0xffffffff),
        ("eq", 5, 5, 1),
        ("ne", 5, 5, 0),
        ("ult", 1, 0xffffffff, 1),
        ("slt", 1, 0xffffffff, 0),             # 1 < -1 signed is false
        ("sge", 0, 0x80000000, 1),
        ("ule", 5, 5, 1),
        ("ugt", 6, 5, 1),
        ("uge", 5, 6, 0),
        ("sle", 0x80000000, 0, 1),
        ("sgt", 0, 0xffffffff, 1),
    ])
    def test_binops(self, op, a, b, expected):
        width = 1 if op in N.COMPARISON_OPS else 32
        expr = N.BinOp(op, c32(a), c32(b), width)
        assert self._eval(expr) == expected

    def test_unops(self):
        assert self._eval(N.UnOp("not", c32(0), 32)) == 0xffffffff
        assert self._eval(N.UnOp("neg", c32(1), 32)) == 0xffffffff
        assert self._eval(N.UnOp("boolnot", N.Const(1, 1), 1)) == 0

    def test_ext(self):
        assert self._eval(N.Ext("zext", N.Const(0x80, 8), 32)) == 0x80
        assert self._eval(N.Ext("sext", N.Const(0x80, 8), 32)) == 0xffffff80

    def test_extract_concat(self):
        assert self._eval(N.ExtractBits(c32(0x12345678), 23, 8)) == 0x3456
        assert self._eval(N.ConcatBits(N.Const(0xab, 8),
                                       N.Const(0xcd, 8))) == 0xabcd

    def test_ite_takes_only_chosen_branch(self):
        # The untaken branch would consume input; concrete eval must not.
        machine = FakeMachine(input_bytes=b"\x55")
        expr = N.IteExpr(N.Const(1, 1), c32(1), c32(2))
        assert interp.eval_expr(expr, machine, {}, {}) == 1
        assert machine.inputs == [0x55]


class TestExecBlock:
    def test_setlocal_then_use(self):
        machine, _ = run([
            N.SetLocal("t", c32(41)),
            N.SetReg("x", c32(1), N.BinOp("add", N.Local("t", 32), c32(1),
                                          32)),
        ])
        assert machine.regs[("x", 1)] == 42

    def test_setpc(self):
        _, outcome = run([N.SetPc(c32(0x3000))])
        assert outcome.next_pc == 0x3000

    def test_fall_through_has_no_next_pc(self):
        _, outcome = run([N.SetReg("x", c32(1), c32(5))])
        assert outcome.next_pc is None

    def test_store_output(self):
        machine, _ = run([
            N.Store(c32(0x100), N.Const(0xbeef, 16), 2),
            N.Output(N.Const(0x41, 8)),
        ])
        assert machine.mem[0x100] == 0xef and machine.mem[0x101] == 0xbe
        assert machine.outputs == [0x41]

    def test_halt_stops_block(self):
        machine, outcome = run([
            N.Halt(N.Const(3, 8)),
            N.Output(N.Const(1, 8)),   # must not run
        ])
        assert outcome.halted and outcome.exit_code == 3
        assert machine.outputs == []

    def test_trap_stops_block(self):
        _, outcome = run([N.Trap(N.Const(9, 8))])
        assert outcome.trapped and outcome.trap_code == 9

    def test_if_branches(self):
        machine, _ = run([
            N.IfStmt(N.BinOp("eq", c32(1), c32(1), 1),
                     [N.SetReg("x", c32(1), c32(10))],
                     [N.SetReg("x", c32(1), c32(20))]),
        ])
        assert machine.regs[("x", 1)] == 10

    def test_halt_inside_if_stops_outer(self):
        machine, outcome = run([
            N.IfStmt(N.Const(1, 1), [N.Halt(N.Const(1, 8))], []),
            N.Output(N.Const(1, 8)),
        ])
        assert outcome.halted
        assert machine.outputs == []

    def test_input_byte_as_whole_rhs(self):
        machine, _ = run([N.SetReg("x", c32(2), N.InputByte())],
                         machine=FakeMachine(input_bytes=b"\x7f"))
        assert machine.regs[("x", 2)] == 0x7f

    def test_input_byte_as_whole_local_rhs(self):
        machine, _ = run([N.SetLocal("b", N.InputByte()),
                          N.Output(N.Local("b", 8))],
                         machine=FakeMachine(input_bytes=b"\x42"))
        assert machine.outputs == [0x42]

    def test_nested_input_byte_rejected(self):
        # The input cursor is a side effect; nested in() would make its
        # timing depend on expression evaluation order, which concrete
        # and symbolic execution need not share.  The translator never
        # emits this shape, and the interpreter refuses it outright.
        with pytest.raises(ValueError, match="whole right-hand side"):
            run([N.SetReg("x", c32(2),
                          N.Ext("zext", N.InputByte(), 32))],
                machine=FakeMachine(input_bytes=b"\x7f"))

    def test_input_cursor_advances_in_statement_order(self):
        machine, _ = run([N.SetLocal("a", N.InputByte()),
                          N.SetLocal("b", N.InputByte()),
                          N.Output(N.Local("b", 8)),
                          N.Output(N.Local("a", 8))],
                         machine=FakeMachine(input_bytes=b"\x01\x02"))
        assert machine.outputs == [0x02, 0x01]

    def test_untaken_if_branch_does_not_consume_input(self):
        # Pins the evaluation-order contract the compiled twins rely on:
        # an in() in an untaken IfStmt branch must never move the input
        # cursor, so branch structure alone decides consumption order.
        machine, _ = run([
            N.IfStmt(N.Const(0, 1),
                     [N.SetLocal("a", N.InputByte())],
                     [N.SetLocal("b", N.InputByte())]),
            N.Output(N.Local("b", 8)),
        ], machine=FakeMachine(input_bytes=b"\x11\x22"))
        assert machine.outputs == [0x11]
        assert machine.inputs == [0x22]
