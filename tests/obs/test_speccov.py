"""ADL spec coverage: rule attribution across every built-in ISA.

Acceptance invariant (ISSUE): speccov attributes **100%** of executed
instructions to rules with valid line spans in the cross-ISA tests —
i.e. ``unattributed`` stays empty on every built-in spec.
"""

import pytest

from repro.adl import builtin_spec_names
from repro.core import Engine, EngineConfig
from repro.isa import build
from repro.obs import (IsaSpecCoverage, Obs, RingBufferSink, SpecCoverage,
                      rule_coverage_from_visited)
from repro.programs import build_kernel

ALL_ISAS = list(builtin_spec_names())


def traced_run(target, kernel="maze", **params):
    if not params and kernel == "maze":
        params = {"depth": 2, "solution": 0b01}
    model, image = build_kernel(kernel, target, **params)
    obs = Obs.default()
    ring = RingBufferSink(capacity=100000)
    obs.add_sink(ring)
    engine = Engine(model, config=EngineConfig(obs=obs,
                                               collect_coverage=True))
    engine.load_image(image)
    result = engine.explore()
    return model, image, result, ring


class TestProvenance:
    @pytest.mark.parametrize("isa", ALL_ISAS)
    def test_every_rule_has_a_valid_line_span(self, isa):
        model = build(isa)
        assert model.rules, "generated model must carry rule provenance"
        assert len(model.rules) == len(model.instructions)
        for name, rule in model.rules.items():
            assert rule.instruction == name
            assert 1 <= rule.line_lo <= rule.line_hi
            assert rule.mnemonic

    @pytest.mark.parametrize("isa", ALL_ISAS)
    def test_spec_source_path_recorded(self, isa):
        model = build(isa)
        assert model.source_path and model.source_path.endswith(".adl")

    def test_decoded_rule_accessor(self):
        model, image = build_kernel("maze", "rv32", depth=1, solution=0)
        data = bytes(image.data)
        window = data[:model.decoder.max_length]
        decoded = model.decoder.decode_bytes(window, image.base)
        assert decoded.rule is model.rules[decoded.instruction.name]


@pytest.mark.parametrize("isa", ALL_ISAS)
class TestFullAttribution:
    def test_event_based_attribution_is_total(self, isa):
        model, _, result, ring = traced_run(isa)
        cov = SpecCoverage.from_events(ring.events())
        assert cov.isas() == [isa]
        isa_cov = cov.per_isa[isa]
        assert isa_cov.unattributed == {}
        assert (isa_cov.attributed_instructions
                == result.instructions_executed)
        assert 0 < isa_cov.rule_ratio <= 1.0

    def test_image_based_attribution_is_total(self, isa):
        model, image, result, _ = traced_run(isa)
        cov = rule_coverage_from_visited(model, image, result.visited_pcs)
        assert cov.unattributed == {}
        # Image-based counts unique sites, event-based counts executions;
        # the *covered rule sets* must agree.
        events_cov = SpecCoverage.from_events(
            traced_run(isa)[3].events()).per_isa[isa]
        assert set(cov.covered) == set(events_cov.covered)


class TestFigures:
    @pytest.fixture(scope="class")
    def cov(self):
        _, _, _, ring = traced_run("rv32")
        return SpecCoverage.from_events(ring.events()).per_isa["rv32"]

    def test_ratios_consistent(self, cov):
        assert len(cov.covered) + len(cov.uncovered) == len(cov.rules)
        assert cov.rule_ratio == len(cov.covered) / len(cov.rules)
        forms = cov.mnemonic_forms()
        assert sum(t for _, t in forms.values()) == len(cov.rules)
        assert sum(c for c, _ in forms.values()) == len(cov.covered)

    def test_record_unknown_rule_is_flagged(self):
        cov = IsaSpecCoverage("rv32")
        cov.record("not-a-rule", 3)
        assert cov.unattributed == {"not-a-rule": 3}
        assert "UNATTRIBUTED" in cov.summary()

    def test_summary_and_report(self, cov):
        assert "speccov[rv32]" in cov.summary()
        report = cov.report()
        assert "spec coverage: rv32" in report
        for name in cov.covered:
            assert name in report
        assert "uncovered" in report

    def test_annotate_spec_margins(self, cov):
        text = cov.annotate_spec()
        lines = text.splitlines()
        assert lines[0].startswith("# annotated spec coverage")
        hit_lines = [l for l in lines if l.split("|")[0].strip().isdigit()]
        bang_lines = [l for l in lines if l.split("|")[0].strip() == "!"]
        assert hit_lines, "covered rules must carry hit counts"
        assert bang_lines, "uncovered rules must be flagged"
        # Spec body is preserved verbatim after the margin.
        with open(cov.model.source_path) as handle:
            source = handle.read().splitlines()
        assert [l.split("|", 1)[1] for l in lines[3:]] == source

    def test_annotate_requires_source_path(self):
        model = build("rv32")
        cov = IsaSpecCoverage("rv32", model)
        saved, model.source_path = model.source_path, None
        try:
            with pytest.raises(ValueError):
                cov.annotate_spec()
        finally:
            model.source_path = saved

    def test_to_dict_round_trip(self, cov):
        import json
        payload = json.loads(json.dumps(cov.to_dict()))
        assert payload["rules_total"] == len(cov.rules)
        assert payload["rules_covered"] == len(cov.covered)


class TestGate:
    def test_gate_passes_and_fails(self):
        _, _, _, ring = traced_run("rv32")
        cov = SpecCoverage.from_events(ring.events())
        ratio = cov.min_rule_ratio()
        assert 0 < ratio < 1
        assert cov.gate(ratio) == []
        assert cov.gate(ratio + 0.01) == ["rv32"]
        assert cov.gate(1.1) == ["rv32"]

    def test_empty_coverage_reports_hint(self):
        cov = SpecCoverage.from_events([])
        assert cov.per_isa == {}
        assert "no step events" in cov.report()
        assert cov.min_rule_ratio() == 0.0


class _StubModel:
    """Minimal model stand-in: a rules table and no source file."""

    def __init__(self, rules):
        self.name = "stub"
        self.rules = rules
        self.source_path = None


class TestMnemonicForms:
    # Two instruction blocks sharing the 'mov' mnemonic (register vs
    # immediate operand forms) — the built-in specs keep one block per
    # mnemonic, so the form layer is exercised on an in-memory spec.
    SPEC = """
    architecture t {
      wordsize 16
      endian little
      regfile r[4] width 16
      pc width 16
      encoding e { a:4 b:4 op:8 }
      instruction mov_rr {
        encoding e
        match op = 1
        syntax "mov {a:r}, {b:r}"
        semantics { r[a] = r[b]; pc = pc + 2; }
      }
      instruction mov_ri {
        encoding e
        match op = 2
        syntax "mov {a:r}, {b}"
        semantics { r[a] = zext(b, 16); pc = pc + 2; }
      }
    }
    """

    def _coverage(self):
        from repro.adl.analyze import analyze
        from repro.adl.parser import parse_spec
        from repro.adl.translate import rule_provenance
        spec = analyze(parse_spec(self.SPEC))
        rules = {instr.name: rule_provenance(spec, instr)
                 for instr in spec.instructions}
        return IsaSpecCoverage("stub", _StubModel(rules))

    def test_multiple_forms_per_mnemonic_visible(self):
        cov = self._coverage()
        assert cov.mnemonic_forms()["mov"] == (0, 2)
        # Cover exactly one form: the mnemonic is reported partial.
        cov.record("mov_rr")
        assert cov.mnemonic_forms()["mov"] == (1, 2)
        assert cov.rule_ratio == 0.5
        assert cov.form_ratio == 0.5
        assert "partial mnemonics" in cov.report()
        assert "mov 1/2" in cov.report()

    def test_builtin_specs_have_unique_forms(self):
        # Documents the current built-ins: one block per mnemonic, so
        # form ratio == rule ratio there.
        for isa in ALL_ISAS:
            cov = IsaSpecCoverage(isa)
            forms = cov.mnemonic_forms()
            assert all(t == 1 for _, t in forms.values())


class TestExerciserWorkload:
    @pytest.mark.parametrize("isa", ALL_ISAS)
    def test_exerciser_clears_the_ci_gate(self, isa):
        # The CI flight-recorder job gates `repro speccov` at 0.5 on
        # the exerciser kernel; pin that invariant here so a spec or
        # kernel change cannot silently break the workflow.
        _, _, _, ring = traced_run(isa, kernel="exerciser")
        cov = SpecCoverage.from_events(ring.events())
        assert cov.gate(0.5) == []
        assert cov.per_isa[isa].unattributed == {}


class TestJsonlPath:
    def test_from_jsonl(self, tmp_path):
        from repro.obs import JsonlSink
        model, image = build_kernel("maze", "rv32", depth=2, solution=0)
        out = tmp_path / "run.jsonl"
        obs = Obs.default()
        obs.add_sink(JsonlSink(str(out)))
        engine = Engine(model, config=EngineConfig(obs=obs))
        engine.load_image(image)
        result = engine.explore()
        obs.close()
        cov, warnings = SpecCoverage.from_jsonl(str(out))
        assert warnings == []
        assert (cov.per_isa["rv32"].attributed_instructions
                == result.instructions_executed)
