"""Prometheus text exposition + the stdlib /metrics server."""

import urllib.request

from repro.obs import MetricsRegistry, MetricsServer, render_prom
from repro.obs.prom import render_prom_snapshot


def make_registry():
    registry = MetricsRegistry()
    registry.counter("engine.steps").inc(42)
    registry.gauge("health.frontier").set(7)
    hist = registry.histogram("solver.check_s")
    for value in (0.1, 0.2, 0.3):
        hist.observe(value)
    return registry


class TestRender:
    def test_counter_gets_total_suffix_and_type(self):
        text = render_prom(make_registry())
        assert "# TYPE repro_engine_steps_total counter" in text
        assert "repro_engine_steps_total 42" in text

    def test_gauge(self):
        text = render_prom(make_registry())
        assert "# TYPE repro_health_frontier gauge" in text
        assert "repro_health_frontier 7" in text

    def test_histogram_becomes_summary(self):
        text = render_prom(make_registry())
        assert "# TYPE repro_solver_check_s summary" in text
        assert 'repro_solver_check_s{quantile="0.5"}' in text
        assert "repro_solver_check_s_count 3" in text

    def test_names_are_sanitized(self):
        snapshot = {"counters": {"a.b-c/d": 1}}
        text = render_prom_snapshot(snapshot)
        assert "repro_a_b_c_d_total 1" in text

    def test_custom_namespace(self):
        text = render_prom(make_registry(), namespace="adl")
        assert "adl_engine_steps_total 42" in text
        assert "repro_" not in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prom_snapshot({}) == ""
        assert render_prom_snapshot({"counters": {}, "gauges": {},
                                     "histograms": {}}) == ""

    def test_run_summary_metrics_section_renders(self):
        # The exact shape `repro metrics --prom` feeds it.
        section = {"counters": {"engine.paths": 3},
                   "gauges": {"health.frontier": 1},
                   "histograms": {"solver.check_s": {
                       "count": 2, "sum": 0.5, "min": 0.1, "max": 0.4,
                       "mean": 0.25, "p50": 0.1, "p90": 0.4,
                       "p99": 0.4}}}
        text = render_prom_snapshot(section)
        assert "repro_engine_paths_total 3" in text
        assert "repro_solver_check_s_sum 0.5" in text


class TestServer:
    def test_serves_live_registry(self):
        registry = make_registry()
        server = MetricsServer(registry, port=0)
        try:
            body = urllib.request.urlopen(server.url,
                                          timeout=5).read().decode()
            assert "repro_engine_steps_total 42" in body
            # Live: a later increment shows up on the next scrape.
            registry.counter("engine.steps").inc(8)
            body = urllib.request.urlopen(server.url,
                                          timeout=5).read().decode()
            assert "repro_engine_steps_total 50" in body
        finally:
            server.close()

    def test_healthz(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        try:
            url = "http://%s:%d/healthz" % (server.host, server.port)
            assert urllib.request.urlopen(
                url, timeout=5).read() == b"ok\n"
        finally:
            server.close()

    def test_unknown_path_is_404(self):
        import urllib.error
        server = MetricsServer(MetricsRegistry(), port=0)
        try:
            url = "http://%s:%d/nope" % (server.host, server.port)
            try:
                urllib.request.urlopen(url, timeout=5)
                raised = False
            except urllib.error.HTTPError as error:
                raised = error.code == 404
            assert raised
        finally:
            server.close()
