"""Flight recorder: the reconstructed tree is exact w.r.t. the run.

Acceptance invariants (ISSUE acceptance section): ``repro tree`` leaf
count and defect set must exactly match ``ExplorationResult`` for the
same run — here asserted at the library level on more than one ISA,
both online (FlightRecorder sink) and offline (JSONL round-trip).
"""

import pytest

from repro.core import Engine, EngineConfig
from repro.obs import (ExecutionTree, FlightRecorder, JsonlSink, Obs,
                      RingBufferSink)
from repro.programs import build_kernel


def explore_recorded(target, kernel="maze", config_kw=None, **params):
    params = params or {"depth": 3, "solution": 0b101}
    model, image = build_kernel(kernel, target, **params)
    obs = Obs.default()
    recorder = FlightRecorder()
    obs.add_sink(recorder)
    engine = Engine(model, config=EngineConfig(obs=obs,
                                               **(config_kw or {})))
    engine.load_image(image)
    result = engine.explore()
    return result, recorder.tree


@pytest.mark.parametrize("target", ["rv32", "mips32"])
class TestTreeMatchesResult:
    def test_leaves_match_paths(self, target):
        result, tree = explore_recorded(target)
        leaves = tree.leaves()
        assert len(leaves) == len(result.paths)
        assert ({leaf.state_id for leaf in leaves}
                == {path.state.state_id for path in result.paths})

    def test_leaf_statuses_match_path_statuses(self, target):
        result, tree = explore_recorded(target)
        by_id = {path.state.state_id: path for path in result.paths}
        for leaf in tree.leaves():
            assert leaf.status == by_id[leaf.state_id].status
            assert leaf.exit_code == by_id[leaf.state_id].exit_code

    def test_defect_set_matches(self, target):
        result, tree = explore_recorded(target)
        assert result.defects, "maze has a reachable trap"
        assert tree.defect_set() == {(d.kind, d.pc) for d in result.defects}

    def test_step_totals_match(self, target):
        result, tree = explore_recorded(target)
        total = sum(node.steps for node in tree.nodes.values())
        assert total == result.instructions_executed

    def test_every_non_root_has_parent_edge(self, target):
        _, tree = explore_recorded(target)
        roots = tree.roots()
        # State ids are process-global, so the root is the smallest id
        # of this run rather than literally 0.
        root_id = min(tree.nodes)
        assert len(roots) == 1 and roots[0].state_id == root_id
        linked = {edge.child for edge in tree.edges
                  if edge.kind != "merge"}
        for node in tree.nodes.values():
            if node.state_id == root_id:
                continue
            assert node.parent is not None
            assert node.state_id in linked

    def test_no_live_nodes_after_exhaustive_run(self, target):
        _, tree = explore_recorded(target)
        assert tree.stats()["live"] == 0

    def test_fork_edges_carry_condition_summaries(self, target):
        _, tree = explore_recorded(target)
        conds = [e.cond for e in tree.edges if e.kind == "fork"]
        assert conds and any(conds), "maze forks must carry conditions"


class TestOfflineReconstruction:
    def test_jsonl_round_trip_identical(self, tmp_path):
        model, image = build_kernel("maze", "rv32", depth=3,
                                    solution=0b010)
        out = tmp_path / "run.jsonl"
        obs = Obs.default()
        recorder = FlightRecorder()
        obs.add_sink(recorder)
        obs.add_sink(JsonlSink(str(out)))
        engine = Engine(model, config=EngineConfig(obs=obs))
        engine.load_image(image)
        result = engine.explore()
        obs.close()

        offline, warnings = ExecutionTree.from_jsonl(str(out))
        assert warnings == []
        online = recorder.tree
        assert offline.stats() == online.stats()
        assert offline.defect_set() == online.defect_set()
        assert len(offline.leaves()) == len(result.paths)
        assert ([n.to_dict() for n in offline.nodes.values()]
                == [n.to_dict() for n in online.nodes.values()])
        assert ([e.to_dict() for e in offline.edges]
                == [e.to_dict() for e in online.edges])


class TestMergeHandling:
    def test_merged_states_are_dag_links_not_leaves(self):
        model, image = build_kernel("diamonds", "rv32", count=4)
        obs = Obs.default()
        recorder = FlightRecorder()
        obs.add_sink(recorder)
        engine = Engine(model, strategy="bfs",
                        config=EngineConfig(merge_states=True, obs=obs))
        engine.load_image(image)
        result = engine.explore()
        tree = recorder.tree

        assert engine.strategy.merges > 0, "diamonds must merge under bfs"
        merge_edges = [e for e in tree.edges if e.kind == "merge"]
        assert merge_edges
        merged = [n for n in tree.nodes.values() if n.status == "merged"]
        assert merged
        for node in merged:
            assert node.merged_into is not None
        # Merged-away states are neither leaves nor counted paths:
        assert len(tree.leaves()) == len(result.paths)
        assert tree.defect_set() == {(d.kind, d.pc) for d in result.defects}


class TestPruned:
    def test_trap_branch_is_pruned_with_reason(self):
        # maze's trap branch dies via _PathEnd('trap'): it must appear
        # as a pruned node with a parent edge, not a dangling orphan.
        _, tree = explore_recorded("rv32")
        pruned = [n for n in tree.nodes.values() if n.status == "pruned"]
        assert pruned
        for node in pruned:
            assert node.prune_reason == "trap"
            assert node.parent is not None

    def test_pruned_nodes_are_not_leaves(self):
        result, tree = explore_recorded("rv32")
        leaf_ids = {leaf.state_id for leaf in tree.leaves()}
        for node in tree.nodes.values():
            if node.status == "pruned":
                assert node.state_id not in leaf_ids


class TestRenderers:
    @pytest.fixture(scope="class")
    def tree(self):
        _, tree = explore_recorded("rv32")
        return tree

    def test_ascii(self, tree):
        text = tree.to_ascii()
        assert "execution tree" in text
        for node in tree.nodes.values():
            assert "s%d " % node.state_id in text

    def test_ascii_max_nodes(self, tree):
        text = tree.to_ascii(max_nodes=1)
        assert "more nodes" in text

    def test_dot_is_well_formed(self, tree):
        dot = tree.to_dot()
        assert dot.startswith("digraph exploration {")
        assert dot.rstrip().endswith("}")
        for node in tree.nodes.values():
            assert "s%d [" % node.state_id in dot
        for edge in tree.edges:
            assert "s%d -> s%d" % (edge.parent, edge.child) in dot

    def test_json_round_trips(self, tree):
        import json
        payload = json.loads(tree.to_json())
        assert payload["isa"] == "rv32"
        assert payload["stats"] == tree.stats()
        assert len(payload["nodes"]) == len(tree.nodes)
        assert len(payload["edges"]) == len(tree.edges)

    def test_live_recorder_matches_ring_rebuild(self):
        # FlightRecorder consuming events live == from_events on the
        # same buffered stream.
        model, image = build_kernel("maze", "rv32", depth=2,
                                    solution=0b11)
        obs = Obs.default()
        recorder = FlightRecorder()
        ring = RingBufferSink(capacity=100000)
        obs.add_sink(recorder)
        obs.add_sink(ring)
        engine = Engine(model, config=EngineConfig(obs=obs))
        engine.load_image(image)
        engine.explore()
        rebuilt = ExecutionTree.from_events(ring.events())
        assert rebuilt.stats() == recorder.tree.stats()
