"""Health monitor: sampler, watchdog, determinism, degradation actions.

The contracts under test (PR 4's tentpole):

* the sampler is read-only and step-count-driven, so a monitored run
  explores exactly the same tree as an unmonitored one;
* the watchdog speaks only when a threshold is configured and crossed,
  and on a healthy run it stays silent;
* degradation actions never fire unless explicitly opted in via
  ``HealthConfig(actions={...})``.
"""

import pytest

from repro.core import Engine, EngineConfig
from repro.obs import (HEALTH, WATCHDOG, HealthConfig, HealthMonitor,
                       Obs, RingBufferSink, health_summary_line)
from repro.obs.health import (ACTION_MERGE, ACTION_STOP, ACTION_SWITCH,
                              FRONTIER_PRESSURE, HEALTH_SCHEMA,
                              POOL_PRESSURE, SOLVER_DOMINATED, STALL)
from repro.programs import build_kernel

KERNEL = ("maze", {"depth": 5, "solution": 0b10110})


def run_maze(health=None, strategy="dfs", sink=False, **config_kwargs):
    model, image = build_kernel(KERNEL[0], "rv32", **KERNEL[1])
    obs = Obs(metrics=True)
    ring = None
    if sink:
        ring = RingBufferSink(capacity=100000)
        obs.add_sink(ring)
    config = EngineConfig(obs=obs, health=health,
                          collect_coverage=True, **config_kwargs)
    engine = Engine(model, config=config, strategy=strategy)
    engine.load_image(image)
    result = engine.explore()
    return engine, result, ring


def fingerprint(result):
    """Order-independent digest of what a run found."""
    leaves = sorted((p.status, p.input_bytes, p.exit_code)
                    for p in result.paths)
    defects = sorted((d.kind, d.pc, d.input_bytes)
                     for d in result.defects)
    return (leaves, defects, result.instructions_executed)


class TestSampler:
    def test_samples_fire_on_step_cadence(self):
        health = HealthConfig(sample_every_steps=64)
        engine, result, _ = run_maze(health=health)
        monitor = engine.health
        assert monitor is not None
        expected = result.instructions_executed // 64
        assert monitor.total_samples == expected
        assert result.telemetry["health"]["samples"] == expected

    def test_sample_schema(self):
        health = HealthConfig(sample_every_steps=64)
        engine, result, _ = run_maze(health=health)
        sample = engine.health.samples[-1]
        assert sample["v"] == HEALTH_SCHEMA
        for key in ("seq", "t", "steps", "steps_per_sec", "frontier",
                    "coverage", "paths", "defects", "instructions",
                    "solver", "pool", "top_states"):
            assert key in sample
        for key in ("checks", "solve_time", "share", "hit_ratio"):
            assert key in sample["solver"]
        for key in ("interned", "grown"):
            assert key in sample["pool"]

    def test_health_events_emitted_and_flushed(self):
        health = HealthConfig(sample_every_steps=64)
        engine, _, ring = run_maze(health=health, sink=True)
        events = ring.events(HEALTH)
        assert len(events) == engine.health.total_samples
        assert all(event.data["sample"]["v"] == HEALTH_SCHEMA
                   for event in events)

    def test_metrics_mirrored(self):
        health = HealthConfig(sample_every_steps=64)
        engine, result, _ = run_maze(health=health)
        counters = engine.obs.metrics.counters_snapshot()
        assert counters["health.samples"] == engine.health.total_samples
        gauges = engine.obs.metrics.snapshot()["gauges"]
        assert gauges["health.coverage"] == len(result.visited_pcs)

    def test_top_states_bounded_and_sorted(self):
        health = HealthConfig(sample_every_steps=16, top_k=3)
        engine, _, _ = run_maze(health=health, strategy="bfs")
        saw_states = False
        for sample in engine.health.samples:
            top = sample["top_states"]
            assert len(top) <= 3
            weights = [f["path_terms"] + f["pages"] for f in top]
            assert weights == sorted(weights, reverse=True)
            saw_states = saw_states or bool(top)
        assert saw_states, "bfs keeps a frontier; some sample must see it"

    def test_healthy_run_has_zero_diagnoses(self):
        engine, _, _ = run_maze(health=HealthConfig(sample_every_steps=16))
        assert engine.health.diagnoses == []
        assert "healthy" in engine.health.report()

    def test_summary_line(self):
        health = HealthConfig(sample_every_steps=64)
        _, result, _ = run_maze(health=health)
        line = result.health_line()
        assert line is not None and line.startswith("health: samples=")
        assert health_summary_line(None) is None
        assert health_summary_line({"samples": 0}) is None
        assert health_summary_line("garbage") is None

    def test_unmonitored_run_has_no_health_telemetry(self):
        _, result, _ = run_maze(health=None)
        assert "health" not in result.telemetry
        assert result.health_line() is None


class TestDeterminism:
    def test_monitor_on_vs_off_identical_exploration(self):
        _, bare, _ = run_maze(health=None)
        _, monitored, _ = run_maze(
            health=HealthConfig(sample_every_steps=16))
        assert fingerprint(bare) == fingerprint(monitored)
        assert monitored.stop_reason == bare.stop_reason == "exhausted"

    def test_observe_only_watchdog_does_not_change_exploration(self):
        _, bare, _ = run_maze(health=None)
        # A ludicrous budget: fires on nearly every sample, but the
        # default action is observe-only.
        engine, noisy, _ = run_maze(
            health=HealthConfig(sample_every_steps=16, frontier_budget=0))
        assert engine.health.diagnoses, "budget 0 must fire"
        assert fingerprint(bare) == fingerprint(noisy)
        assert noisy.stop_reason == "exhausted"


class TestWatchdog:
    def _monitor(self, **kwargs):
        config = HealthConfig(stall_window=None,
                              solver_share_threshold=None, **kwargs)
        return HealthMonitor(config)

    @staticmethod
    def _sample(seq=0, coverage=10, paths=1, defects=0, frontier=2,
                grown=0):
        return {"v": HEALTH_SCHEMA, "seq": seq, "t": 0.1 * seq,
                "coverage": coverage, "paths": paths, "defects": defects,
                "frontier": frontier, "pool": {"grown": grown},
                "steps_per_sec": 0.0}

    def test_stall_needs_a_full_window(self):
        monitor = self._monitor()
        monitor.config.stall_window = 2
        assert monitor._watchdog(self._sample(0), 0.0, 1.0) == []
        assert monitor._watchdog(self._sample(1), 0.0, 1.0) == []
        fired = monitor._watchdog(self._sample(2), 0.0, 1.0)
        assert [d["diagnosis"] for d in fired] == [STALL]
        assert fired[0]["streak"] == 2
        # Any progress resets the streak.
        assert monitor._watchdog(self._sample(3, coverage=11),
                                 0.0, 1.0) == []

    def test_solver_dominated(self):
        monitor = self._monitor()
        monitor.config.solver_share_threshold = 0.9
        fired = monitor._watchdog(self._sample(), 0.95, 1.0)
        assert [d["diagnosis"] for d in fired] == [SOLVER_DOMINATED]
        # Below the minimum window it stays silent (noise guard).
        assert monitor._watchdog(self._sample(1, coverage=99),
                                 0.95, 0.001) == []

    def test_frontier_and_pool_pressure(self):
        monitor = self._monitor(frontier_budget=5, pool_budget=100)
        fired = monitor._watchdog(self._sample(frontier=6, grown=101),
                                  0.0, 1.0)
        assert sorted(d["diagnosis"] for d in fired) == sorted(
            [FRONTIER_PRESSURE, POOL_PRESSURE])
        assert all(d["action"] == "none" for d in fired)

    def test_watchdog_events_carry_diagnosis(self):
        health = HealthConfig(sample_every_steps=16, frontier_budget=0)
        engine, _, ring = run_maze(health=health, sink=True)
        events = ring.events(WATCHDOG)
        assert len(events) == len(engine.health.diagnoses)
        assert all(event.data["diagnosis"] == FRONTIER_PRESSURE
                   for event in events)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(sample_every_steps=0)
        with pytest.raises(ValueError):
            HealthConfig(actions={"bogus-diagnosis": "stop"})
        with pytest.raises(ValueError):
            HealthConfig(actions={FRONTIER_PRESSURE: "explode"})


class TestActions:
    def test_stop_action_sets_pressure_stop_reason(self):
        health = HealthConfig(sample_every_steps=16, frontier_budget=0,
                              actions={FRONTIER_PRESSURE: ACTION_STOP})
        _, result, _ = run_maze(health=health)
        assert result.stop_reason == "pressure"

    def test_merge_action_shrinks_the_frontier(self):
        _, baseline, _ = run_maze(health=None, strategy="bfs")
        health = HealthConfig(sample_every_steps=16, frontier_budget=2,
                              actions={FRONTIER_PRESSURE: ACTION_MERGE})
        engine, merged, _ = run_maze(health=health, strategy="bfs")
        assert engine.health.diagnoses
        assert len(merged.paths) < len(baseline.paths)
        # The merged run still reaches the planted defect.
        assert {d.kind for d in merged.defects} == \
            {d.kind for d in baseline.defects}

    def test_switch_action_swaps_the_strategy(self):
        health = HealthConfig(sample_every_steps=16, frontier_budget=0,
                              actions={FRONTIER_PRESSURE: ACTION_SWITCH},
                              switch_strategy="bfs")
        engine, result, _ = run_maze(health=health, strategy="dfs")
        assert engine._strategy_name == "bfs"
        assert result.stop_reason == "exhausted"


class TestDeadline:
    def test_zero_deadline_stops_immediately(self):
        _, result, _ = run_maze(health=None, max_wall_seconds=0.0)
        assert result.stop_reason == "deadline"
        assert result.paths == [] or result.instructions_executed >= 0

    def test_generous_deadline_never_fires(self):
        _, result, _ = run_maze(health=None, max_wall_seconds=3600.0)
        assert result.stop_reason == "exhausted"
