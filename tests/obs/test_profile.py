"""Phase profiler: nesting, self-time, decorator, disabled no-op."""

import time

from repro.obs.profile import PhaseProfiler


def spin(seconds):
    """Busy-wait so perf_counter time is attributable to this scope."""
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


class TestScopes:
    def test_single_phase_counts_calls_and_time(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("solver"):
                spin(0.002)
        stats = profiler.stats("solver")
        assert stats.calls == 3
        assert stats.total >= 0.006
        assert abs(stats.total - stats.self_time) < 1e-9

    def test_nesting_attributes_self_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("eval"):
            spin(0.002)
            with profiler.phase("memory"):
                spin(0.002)
                with profiler.phase("solver"):
                    spin(0.002)
        eval_stats = profiler.stats("eval")
        memory_stats = profiler.stats("memory")
        solver_stats = profiler.stats("solver")
        # Inclusive totals nest.
        assert eval_stats.total >= memory_stats.total >= solver_stats.total
        # Self time excludes children.
        assert eval_stats.self_time < eval_stats.total
        assert memory_stats.self_time < memory_stats.total
        assert abs(solver_stats.self_time - solver_stats.total) < 1e-9
        # The parent's self time is roughly total minus the child.
        assert (abs((eval_stats.total - memory_stats.total)
                    - eval_stats.self_time) < 0.002)

    def test_sibling_scopes_both_charged_to_parent(self):
        profiler = PhaseProfiler()
        with profiler.phase("eval"):
            with profiler.phase("solver"):
                spin(0.001)
            with profiler.phase("solver"):
                spin(0.001)
        assert profiler.stats("solver").calls == 2
        assert profiler.stats("eval").self_time < profiler.stats(
            "eval").total

    def test_recursive_same_phase(self):
        profiler = PhaseProfiler()
        with profiler.phase("eval"):
            with profiler.phase("eval"):
                spin(0.001)
        stats = profiler.stats("eval")
        assert stats.calls == 2
        # Self time never exceeds inclusive total across the pair.
        assert stats.self_time <= stats.total + 1e-9


class TestDecorator:
    def test_wrap_times_every_call(self):
        profiler = PhaseProfiler()

        @profiler.wrap("decode")
        def decode():
            spin(0.001)
            return 42

        assert decode() == 42
        assert decode() == 42
        assert profiler.stats("decode").calls == 2


class TestDisabled:
    def test_disabled_profiler_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        with profiler.phase("solver"):
            pass
        assert profiler.snapshot() == {}
        assert profiler.stats("solver").calls == 0

    def test_disabled_phase_is_shared_noop(self):
        profiler = PhaseProfiler(enabled=False)
        assert profiler.phase("a") is profiler.phase("b")


class TestReporting:
    def test_snapshot_and_report(self):
        profiler = PhaseProfiler()
        with profiler.phase("decode"):
            spin(0.001)
        snap = profiler.snapshot()
        assert snap["decode"]["calls"] == 1
        assert snap["decode"]["total_s"] > 0
        text = profiler.report()
        assert "decode" in text
        assert "calls" in text

    def test_reset(self):
        profiler = PhaseProfiler()
        with profiler.phase("decode"):
            pass
        profiler.reset()
        assert profiler.snapshot() == {}


class TestSolverCacheAccounting:
    """Query-cache answers must not inflate measured solver work.

    The accounting contract (SolverStats docstring): ``checks`` counts
    every ``Solver.check`` call, but a call answered by the cache layer
    adds nothing to the ``solver`` profiler phase, the
    ``solver.check_ms`` histogram, ``solve_time`` or the
    ``solver_check`` event count — it is counted under ``cache_*`` and
    emits one ``solver_cache`` event instead.
    """

    @staticmethod
    def _solver_with_obs():
        from repro.obs import Obs, RingBufferSink
        from repro.smt import Solver

        obs = Obs(metrics=True, profile=True)
        ring = RingBufferSink(capacity=1000)
        obs.add_sink(ring)
        solver = Solver()
        solver.attach_obs(obs)
        return solver, obs, ring

    @staticmethod
    def _by_kind(ring):
        counts = {}
        for event in ring.events():
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def test_cached_hit_skips_phase_histogram_and_event(self):
        from repro.smt import SAT
        from repro.smt import terms as T

        solver, obs, ring = self._solver_with_obs()
        cond = T.ult(T.var("acc_a", 8), T.bv(9, 8))
        assert solver.check(extra=[cond]) == SAT

        phase_calls = obs.profiler.stats("solver").calls
        hist_count = obs.metrics.histogram("solver.check_ms").count
        solve_time = solver.stats.solve_time
        checks = solver.stats.checks
        events = self._by_kind(ring)

        assert solver.check(extra=[cond]) == SAT  # exact cache hit

        assert solver.stats.checks == checks + 1
        assert solver.stats.cache_hit_sat == 1
        # None of the solver-work meters moved.
        assert obs.profiler.stats("solver").calls == phase_calls
        assert obs.metrics.histogram("solver.check_ms").count == hist_count
        assert solver.stats.solve_time == solve_time
        after = self._by_kind(ring)
        assert after.get("solver_check", 0) == events.get("solver_check", 0)
        assert after.get("solver_cache", 0) \
            == events.get("solver_cache", 0) + 1
        assert obs.metrics.counter("solver.cache_hit").value == 1

    def test_solved_query_is_fully_metered(self):
        from repro.smt import SAT
        from repro.smt import terms as T

        solver, obs, ring = self._solver_with_obs()
        # x > 9: the zero-model fast path cannot answer this one, so it
        # must reach the solving layers and be fully metered.
        cond = T.ult(T.bv(9, 8), T.var("acc_b", 8))
        assert solver.check(extra=[cond]) == SAT
        assert obs.profiler.stats("solver").calls == 1
        assert obs.metrics.histogram("solver.check_ms").count == 1
        assert self._by_kind(ring).get("solver_check", 0) == 1
        assert obs.metrics.counter("solver.cache_miss").value == 1

    def test_frame_reuse_counts_without_solver_work(self):
        from repro.smt import Solver

        solver, obs, ring = self._solver_with_obs()
        solver.note_frame_reuse()
        assert solver.stats.frame_reuse == 1
        assert solver.stats.checks == 0
        assert obs.profiler.stats("solver").calls == 0
        assert obs.metrics.counter("solver.frame_reuse").value == 1
        events = self._by_kind(ring)
        assert events.get("solver_cache", 0) == 1
        assert events.get("solver_check", 0) == 0

    def test_delta_since_covers_cache_fields(self):
        from repro.smt import SAT, Solver
        from repro.smt import terms as T

        solver = Solver()
        cond = T.ult(T.var("acc_c", 8), T.bv(9, 8))
        assert solver.check(extra=[cond]) == SAT
        before = solver.stats.as_dict()
        assert solver.check(extra=[cond]) == SAT
        solver.note_frame_reuse()
        delta = solver.stats.delta_since(before)
        assert delta["checks"] == 1
        assert delta["cache_hit_sat"] == 1
        assert delta["frame_reuse"] == 1
        assert delta["sat_calls"] == 0
        assert delta["solve_time"] == 0.0


class TestScopeUnwinding:
    """Scopes must unwind correctly when client code raises."""

    def test_exception_still_charges_scope(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("eval"):
                spin(0.001)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        stats = profiler.stats("eval")
        assert stats.calls == 1
        assert stats.total >= 0.001
        # The stack is fully unwound: a fresh root scope is charged as a
        # root, not as a child of the failed one.
        with profiler.phase("decode"):
            pass
        assert profiler.stats("decode").calls == 1
        assert abs(profiler.stats("decode").total
                   - profiler.stats("decode").self_time) < 1e-9

    def test_exception_in_nested_scope_unwinds_to_parent(self):
        profiler = PhaseProfiler()
        with profiler.phase("eval"):
            try:
                with profiler.phase("solver"):
                    raise ValueError("inner")
            except ValueError:
                pass
            spin(0.001)
        eval_stats = profiler.stats("eval")
        solver_stats = profiler.stats("solver")
        assert eval_stats.calls == 1
        assert solver_stats.calls == 1
        # The parent kept timing after the child blew up.
        assert eval_stats.total >= solver_stats.total + 0.001
        # And the child's elapsed time was still handed to the parent.
        assert eval_stats.self_time < eval_stats.total

    def test_deep_nesting_unwinds_completely(self):
        profiler = PhaseProfiler()
        depth = 200

        def recurse(level):
            if level == 0:
                raise RuntimeError("bottom")
            with profiler.phase("eval"):
                recurse(level - 1)

        try:
            recurse(depth)
        except RuntimeError:
            pass
        assert profiler.stats("eval").calls == depth
        # Every frame exited: a new root scope has no leaked parent, so
        # its self time equals its total.
        with profiler.phase("memory"):
            spin(0.001)
        memory = profiler.stats("memory")
        assert abs(memory.total - memory.self_time) < 1e-9

    def test_deep_nesting_totals_are_coherent(self):
        profiler = PhaseProfiler()

        def recurse(level):
            with profiler.phase("eval"):
                if level:
                    recurse(level - 1)
                else:
                    spin(0.001)

        recurse(50)
        stats = profiler.stats("eval")
        assert stats.calls == 51
        # Self time across a recursive chain never exceeds the sum of
        # inclusive totals.
        assert stats.self_time <= stats.total + 1e-9


class TestWrapMetadata:
    def test_wrap_preserves_function_identity(self):
        profiler = PhaseProfiler()

        @profiler.wrap("decode")
        def decode_instruction(word):
            """Decode one instruction word."""
            return word + 1

        assert decode_instruction.__name__ == "decode_instruction"
        assert decode_instruction.__doc__ == "Decode one instruction word."
        assert decode_instruction.__wrapped__(1) == 2
        assert decode_instruction(1) == 2


class TestStatsRegistration:
    """stats() semantics: live view when enabled, detached when not."""

    def test_enabled_stats_is_live_registered_view(self):
        profiler = PhaseProfiler()
        view = profiler.stats("solver")
        assert view.calls == 0
        with profiler.phase("solver"):
            pass
        # The earlier handle observes later activity (same object).
        assert view.calls == 1
        assert profiler.stats("solver") is view

    def test_disabled_stats_is_detached_placeholder(self):
        profiler = PhaseProfiler(enabled=False)
        view = profiler.stats("solver")
        assert view.calls == 0
        with profiler.phase("solver"):
            pass
        # Disabled profiler: nothing recorded anywhere, and the
        # placeholder never appears in snapshots.
        assert view.calls == 0
        assert profiler.snapshot() == {}
        assert profiler.stats("solver") is not view
