"""Phase profiler: nesting, self-time, decorator, disabled no-op."""

import time

from repro.obs.profile import PhaseProfiler


def spin(seconds):
    """Busy-wait so perf_counter time is attributable to this scope."""
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


class TestScopes:
    def test_single_phase_counts_calls_and_time(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("solver"):
                spin(0.002)
        stats = profiler.stats("solver")
        assert stats.calls == 3
        assert stats.total >= 0.006
        assert abs(stats.total - stats.self_time) < 1e-9

    def test_nesting_attributes_self_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("eval"):
            spin(0.002)
            with profiler.phase("memory"):
                spin(0.002)
                with profiler.phase("solver"):
                    spin(0.002)
        eval_stats = profiler.stats("eval")
        memory_stats = profiler.stats("memory")
        solver_stats = profiler.stats("solver")
        # Inclusive totals nest.
        assert eval_stats.total >= memory_stats.total >= solver_stats.total
        # Self time excludes children.
        assert eval_stats.self_time < eval_stats.total
        assert memory_stats.self_time < memory_stats.total
        assert abs(solver_stats.self_time - solver_stats.total) < 1e-9
        # The parent's self time is roughly total minus the child.
        assert (abs((eval_stats.total - memory_stats.total)
                    - eval_stats.self_time) < 0.002)

    def test_sibling_scopes_both_charged_to_parent(self):
        profiler = PhaseProfiler()
        with profiler.phase("eval"):
            with profiler.phase("solver"):
                spin(0.001)
            with profiler.phase("solver"):
                spin(0.001)
        assert profiler.stats("solver").calls == 2
        assert profiler.stats("eval").self_time < profiler.stats(
            "eval").total

    def test_recursive_same_phase(self):
        profiler = PhaseProfiler()
        with profiler.phase("eval"):
            with profiler.phase("eval"):
                spin(0.001)
        stats = profiler.stats("eval")
        assert stats.calls == 2
        # Self time never exceeds inclusive total across the pair.
        assert stats.self_time <= stats.total + 1e-9


class TestDecorator:
    def test_wrap_times_every_call(self):
        profiler = PhaseProfiler()

        @profiler.wrap("decode")
        def decode():
            spin(0.001)
            return 42

        assert decode() == 42
        assert decode() == 42
        assert profiler.stats("decode").calls == 2


class TestDisabled:
    def test_disabled_profiler_records_nothing(self):
        profiler = PhaseProfiler(enabled=False)
        with profiler.phase("solver"):
            pass
        assert profiler.snapshot() == {}
        assert profiler.stats("solver").calls == 0

    def test_disabled_phase_is_shared_noop(self):
        profiler = PhaseProfiler(enabled=False)
        assert profiler.phase("a") is profiler.phase("b")


class TestReporting:
    def test_snapshot_and_report(self):
        profiler = PhaseProfiler()
        with profiler.phase("decode"):
            spin(0.001)
        snap = profiler.snapshot()
        assert snap["decode"]["calls"] == 1
        assert snap["decode"]["total_s"] > 0
        text = profiler.report()
        assert "decode" in text
        assert "calls" in text

    def test_reset(self):
        profiler = PhaseProfiler()
        with profiler.phase("decode"):
            pass
        profiler.reset()
        assert profiler.snapshot() == {}
