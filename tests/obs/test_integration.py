"""End-to-end: an instrumented exploration emits coherent telemetry.

The acceptance invariants: ``path_end`` events == result.paths,
``defect`` events == result.defects, fork events carry real state ids —
on more than one ISA, since the engine is retargetable.
"""

import pytest

from repro.core import Engine, EngineConfig
from repro.isa import assemble, build
from repro.obs import Obs, RingBufferSink
from repro.programs import build_kernel

# A two-branch program with a reachable trap, via the portable builder
# (one source, every ISA).
KERNEL = ("maze", {"depth": 2, "solution": 0b10})


def explore_with_ring(target, profile=False):
    model, image = build_kernel(KERNEL[0], target, **KERNEL[1])
    obs = Obs(metrics=True, profile=profile)
    ring = RingBufferSink(capacity=100000)
    obs.add_sink(ring)
    engine = Engine(model, config=EngineConfig(obs=obs))
    engine.load_image(image)
    result = engine.explore()
    return engine, result, ring


@pytest.mark.parametrize("target", ["rv32", "mips32"])
class TestEventCoherence:
    def test_path_end_events_match_paths(self, target):
        _, result, ring = explore_with_ring(target)
        ends = ring.events("path_end")
        assert len(ends) == len(result.paths)
        assert ({event.state_id for event in ends}
                == {path.state.state_id for path in result.paths})

    def test_defect_events_match_defects(self, target):
        _, result, ring = explore_with_ring(target)
        defects = ring.events("defect")
        assert len(defects) == len(result.defects)
        assert ({event.data["defect_kind"] for event in defects}
                == {defect.kind for defect in result.defects})
        assert ({event.state_id for event in defects}
                == {defect.state_id for defect in result.defects})

    def test_fork_events_have_real_children(self, target):
        _, result, ring = explore_with_ring(target)
        forks = ring.events("fork")
        assert forks, "a branching maze must fork"
        ended = {event.state_id for event in ring.events("path_end")}
        ended |= {event.state_id for event in ring.events("defect")}
        all_children = set()
        for event in forks:
            children = event.data["children"]
            assert len(children) >= 2
            all_children.update(children)
        # Every finished state is the root or a fork child.
        roots = {event.state_id for event in ring.events("step")}
        assert ended <= (all_children | roots)

    def test_events_tagged_with_isa(self, target):
        _, _, ring = explore_with_ring(target)
        assert {event.isa for event in ring.events()} == {target}

    def test_step_events_match_instruction_count(self, target):
        _, result, ring = explore_with_ring(target)
        assert len(ring.events("step")) == result.instructions_executed


class TestTelemetrySnapshot:
    def test_result_carries_telemetry(self):
        _, result, _ = explore_with_ring("rv32")
        telemetry = result.telemetry
        assert telemetry["isa"] == "rv32"
        counters = telemetry["metrics"]["counters"]
        assert counters["engine.paths"] == len(result.paths)
        assert counters["engine.defects"] == len(result.defects)
        assert telemetry["solver"]["checks"] == \
            result.solver_stats["checks"]

    def test_profiler_phases_populated(self):
        _, result, _ = explore_with_ring("rv32", profile=True)
        phases = result.telemetry["phases"]
        for name in ("decode", "eval", "strategy", "solver"):
            assert name in phases, "missing phase %r" % name
            assert phases[name]["calls"] > 0


class TestPerExplorationDeltas:
    """The solver-stats lifetime bug: explore() twice must not inflate."""

    def test_second_explore_reports_own_solver_stats(self):
        model, image = build_kernel(KERNEL[0], "rv32", **KERNEL[1])
        engine = Engine(model)
        engine.load_image(image)
        first = engine.explore()
        second = engine.explore()
        assert first.solver_stats["checks"] > 0
        # Identical workload: the second run must not report cumulative
        # counts (the old bug doubled them).
        assert second.solver_stats["checks"] <= \
            first.solver_stats["checks"]
        assert second.solver_stats["solve_time"] <= \
            first.solver_stats["solve_time"] * 10

    def test_second_explore_reports_own_counters(self):
        model, image = build_kernel(KERNEL[0], "rv32", **KERNEL[1])
        engine = Engine(model)
        engine.load_image(image)
        first = engine.explore()
        second = engine.explore()
        c1 = first.telemetry["metrics"]["counters"]
        c2 = second.telemetry["metrics"]["counters"]
        assert c1["engine.paths"] == len(first.paths)
        assert c2["engine.paths"] == len(second.paths)
        assert c2["engine.steps"] <= c1["engine.steps"]


class TestDisabledObs:
    def test_fully_disabled_obs_still_explores(self):
        model, image = build_kernel(KERNEL[0], "rv32", **KERNEL[1])
        engine = Engine(model, config=EngineConfig(obs=Obs.disabled()))
        engine.load_image(image)
        result = engine.explore()
        assert result.paths or result.defects
        assert result.telemetry["metrics"]["counters"] == {}
        assert result.telemetry["phases"] == {}
        assert result.telemetry["events_emitted"] == 0

    def test_default_engine_has_counters_but_no_events(self):
        model, image = build_kernel(KERNEL[0], "rv32", **KERNEL[1])
        engine = Engine(model)
        engine.load_image(image)
        result = engine.explore()
        counters = result.telemetry["metrics"]["counters"]
        assert counters["engine.steps"] == result.instructions_executed
        assert result.telemetry["events_emitted"] == 0


class TestDecodeCacheTelemetry:
    def test_decode_cache_events_and_counters(self):
        model, image = build_kernel(KERNEL[0], "rv32", **KERNEL[1])
        model.decoder.cache_clear()
        obs = Obs(metrics=True)
        ring = RingBufferSink(capacity=100000)
        obs.add_sink(ring)
        engine = Engine(model, config=EngineConfig(obs=obs))
        engine.load_image(image)
        result = engine.explore()
        events = ring.events("decode_cache")
        assert len(events) == result.instructions_executed
        hits = sum(1 for event in events if event.data["hit"])
        misses = len(events) - hits
        counters = result.telemetry["metrics"]["counters"]
        assert counters["decode.cache_hit"] == hits
        assert counters["decode.cache_miss"] == misses


class TestMergeTelemetry:
    def test_merge_events_emitted(self):
        model, image = build_kernel("diamonds", "rv32", count=4)
        obs = Obs(metrics=True)
        ring = RingBufferSink(capacity=100000)
        obs.add_sink(ring)
        engine = Engine(model, strategy="bfs",
                        config=EngineConfig(merge_states=True, obs=obs))
        engine.load_image(image)
        result = engine.explore()
        merges = ring.events("merge")
        assert merges
        assert engine.strategy.merges == len(merges)
        counters = result.telemetry["metrics"]["counters"]
        assert counters["engine.merges"] == len(merges)
        for event in merges:
            assert len(event.data["merged_from"]) == 2
