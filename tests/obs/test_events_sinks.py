"""Event tracer and sinks: round-trips, ring buffer, console format."""

import io

from repro.obs.events import Event, EventTracer
from repro.obs.sinks import (
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    read_jsonl,
    read_run,
)


def make_tracer(sink):
    tracer = EventTracer(isa="rv32")
    tracer.add_sink(sink)
    return tracer


class TestTracer:
    def test_disabled_without_sink(self):
        tracer = EventTracer()
        assert not tracer.enabled
        tracer.emit("step", state_id=1, pc=0x1000)  # no-op, no error
        assert tracer.emitted == 0

    def test_context_fallback(self):
        ring = RingBufferSink()
        tracer = make_tracer(ring)
        tracer.set_context(7, 0x2000)
        tracer.emit("solver_check", result="sat")
        event = ring.events()[0]
        assert event.state_id == 7
        assert event.pc == 0x2000
        assert event.data == {"result": "sat"}

    def test_explicit_ids_override_context(self):
        ring = RingBufferSink()
        tracer = make_tracer(ring)
        tracer.set_context(7, 0x2000)
        tracer.emit("step", state_id=3, pc=0x1234)
        event = ring.events()[0]
        assert (event.state_id, event.pc) == (3, 0x1234)

    def test_fan_out_to_multiple_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = make_tracer(a)
        tracer.add_sink(b)
        tracer.emit("step", state_id=0, pc=0)
        assert len(a) == 1 and len(b) == 1

    def test_remove_sink_disables(self):
        ring = RingBufferSink()
        tracer = make_tracer(ring)
        tracer.remove_sink(ring)
        assert not tracer.enabled


class TestRingBuffer:
    def test_capacity_and_dropped(self):
        ring = RingBufferSink(capacity=3)
        tracer = make_tracer(ring)
        for index in range(5):
            tracer.emit("step", state_id=index, pc=index)
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [event.state_id for event in ring.events()] == [2, 3, 4]

    def test_kind_filter(self):
        ring = RingBufferSink()
        tracer = make_tracer(ring)
        tracer.emit("step", state_id=0, pc=0)
        tracer.emit("fork", state_id=0, pc=0, children=[1, 2])
        assert len(ring.events("fork")) == 1
        assert ring.events("fork")[0].data["children"] == [1, 2]


class TestJsonlRoundTrip:
    def test_emit_parse_same_events(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        tracer = make_tracer(sink)
        tracer.emit("step", state_id=0, pc=0x1000, instr="addi")
        tracer.emit("fork", state_id=0, pc=0x1004, children=[1, 2])
        tracer.emit("path_end", state_id=2, pc=0x1010, status="halted",
                    exit_code=0)
        tracer.close()

        events, meta = read_run(path)
        # Schema version stamp is the only meta record.
        assert [m["record"] for m in meta] == ["schema"]
        assert [event.kind for event in events] == ["step", "fork",
                                                    "path_end"]
        assert all(event.isa == "rv32" for event in events)
        assert events[1].data["children"] == [1, 2]
        assert events[2].data == {"status": "halted", "exit_code": 0}
        # Full dict round-trip: to_dict -> from_dict is the identity.
        for event in events:
            assert Event.from_dict(event.to_dict()) == event

    def test_meta_records_separated(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        tracer = make_tracer(sink)
        tracer.emit("step", state_id=0, pc=0)
        sink.write_meta({"record": "run_summary", "paths": 3})
        sink.close()
        events, meta = read_run(path)
        assert len(events) == 1
        summaries = [m for m in meta if m["record"] == "run_summary"]
        assert len(summaries) == 1
        assert summaries[0]["paths"] == 3
        # schema stamp + step event + run_summary
        assert len(read_jsonl(path)) == 3

    def test_timestamps_monotonic(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        tracer = make_tracer(JsonlSink(path))
        for index in range(10):
            tracer.emit("step", state_id=index, pc=index)
        tracer.close()
        events, _ = read_run(path)
        stamps = [event.ts for event in events]
        assert stamps == sorted(stamps)


class TestConsoleSink:
    def test_human_readable_line(self):
        stream = io.StringIO()
        tracer = make_tracer(ConsoleSink(stream))
        tracer.emit("defect", state_id=4, pc=0x1008,
                    defect_kind="division-by-zero")
        line = stream.getvalue()
        assert "defect" in line
        assert "rv32" in line
        assert "0x1008" in line
        assert "division-by-zero" in line
