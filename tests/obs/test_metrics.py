"""Metrics registry: counter/gauge/histogram math, merge, deltas."""

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_default_and_amount(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_and_set_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.set_max(5)
        assert gauge.value == 10
        gauge.set_max(12)
        assert gauge.value == 12


class TestHistogram:
    def test_basic_stats(self):
        hist = Histogram("h")
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.mean == 2.5

    def test_nearest_rank_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):          # 1..100
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0   # nearest-rank
        assert hist.percentile(90) == 90.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(50) == 0.0

    def test_thinning_keeps_exact_count_sum(self):
        hist = Histogram("h", max_samples=64)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000
        assert hist.total == sum(range(1000))
        assert hist.max == 999.0
        # Thinned samples still give a sane median.
        assert 300 <= hist.percentile(50) <= 700

    def test_merge(self):
        a, b = Histogram("h"), Histogram("h")
        for value in [1.0, 2.0]:
            a.observe(value)
        for value in [10.0, 20.0]:
            b.observe(value)
        a.merge(b)
        assert a.count == 4
        assert a.total == 33.0
        assert a.min == 1.0
        assert a.max == 20.0

    def test_merge_stride_bias_regression(self):
        # A thinned histogram's retained samples each stand for
        # `_stride` observations.  Naive concatenation (the old bug)
        # weighed a heavily-thinned side the same as an unthinned one
        # and dragged percentiles toward the unthinned side.
        a = Histogram("h", max_samples=64)
        for _ in range(6400):
            a.observe(0.0)
        b = Histogram("h", max_samples=64)
        for _ in range(64):
            b.observe(100.0)
        a.merge(b)
        assert a.count == 6464
        assert a.total == 6400.0
        # 99% of observations are 0.0: the re-weighted percentiles must
        # say so.
        assert a.percentile(50) == 0.0
        assert a.percentile(90) == 0.0

    def test_merge_stride_bias_symmetric(self):
        # The unthinned side being `self` must re-thin itself too.
        a = Histogram("h", max_samples=64)
        for _ in range(64):
            a.observe(100.0)
        b = Histogram("h", max_samples=64)
        for _ in range(6400):
            b.observe(0.0)
        a.merge(b)
        assert a.count == 6464
        assert a.percentile(50) == 0.0

    def test_merge_respects_max_samples(self):
        a = Histogram("h", max_samples=64)
        b = Histogram("h", max_samples=64)
        for value in range(60):
            a.observe(float(value))
            b.observe(float(value))
        a.merge(b)
        assert len(a._samples) <= 64
        assert a.count == 120

    def test_snapshot_keys(self):
        hist = Histogram("h")
        hist.observe(2.0)
        snap = hist.snapshot()
        for key in ("count", "sum", "min", "max", "mean", "p50", "p90",
                    "p99"):
            assert key in snap


class TestRegistry:
    def test_instruments_are_idempotent_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_disabled_registry_hands_out_nulls(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_COUNTER
        assert registry.gauge("y") is NULL_GAUGE
        assert registry.histogram("z") is NULL_HISTOGRAM
        # Null instruments swallow writes.
        registry.counter("x").inc(100)
        registry.histogram("z").observe(1.0)
        assert registry.snapshot()["counters"] == {}

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(7)
        registry.histogram("c").observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 7}
        assert snap["histograms"]["c"]["count"] == 1

    def test_delta_since(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(5)
        before = registry.counters_snapshot()
        counter.inc(3)
        registry.counter("new").inc(1)
        delta = registry.delta_since(before)
        assert delta == {"a": 3, "new": 1}

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(1)
        b.counter("hits").inc(2)
        b.counter("only_b").inc(9)
        b.histogram("lat").observe(4.0)
        a.merge(b)
        assert a.counter("hits").value == 3
        assert a.counter("only_b").value == 9
        assert a.histogram("lat").count == 1
