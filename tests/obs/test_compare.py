"""Run comparison (`repro diffstats`): metric extraction + regression
flagging.

The acceptance pin: an injected >= 20% steps/sec regression between two
otherwise-identical runs MUST be flagged.
"""

import json

import pytest

from repro.obs import compare_runs, extract_metrics, load_run
from repro.obs.compare import DEFAULT_THRESHOLD


def write_run(path, rates, wall_time=1.0, instructions=1000, paths=4,
              defects=1, frontier=5, solver_checks=100):
    """Synthesize a minimal but realistic telemetry sidecar."""
    lines = [{"kind": "meta", "record": "schema", "version": 3}]
    for seq, rate in enumerate(rates):
        lines.append({
            "v": 1, "kind": "health", "ts": 0.1 * seq, "isa": "rv32",
            "state_id": -1, "pc": 0,
            "data": {"sample": {"v": 1, "seq": seq, "t": 0.1 * seq,
                                "steps_per_sec": rate,
                                "frontier": frontier,
                                "solver": {"share": 0.25}}}})
    lines.append({
        "kind": "meta", "record": "run_summary", "isa": "rv32",
        "paths": paths, "defects": defects,
        "instructions": instructions, "wall_time": wall_time,
        "stop_reason": "exhausted",
        "telemetry": {"solver": {"checks": solver_checks,
                                 "solve_time": 0.2,
                                 "cache_hit_sat": 40},
                      "phases": {"solver": {"total_s": 0.2}}}})
    with open(path, "w") as handle:
        for record in lines:
            handle.write(json.dumps(record) + "\n")
    return str(path)


@pytest.fixture
def baseline(tmp_path):
    return write_run(tmp_path / "a.jsonl", [1000.0, 1100.0, 1050.0])


class TestExtract:
    def test_health_series_metrics(self, baseline):
        metrics = extract_metrics(load_run(baseline))
        assert metrics["health.steps_per_sec.mean"].value == \
            pytest.approx(1050.0)
        assert metrics["health.steps_per_sec.final"].value == 1050.0
        assert metrics["health.frontier.peak"].value == 5
        assert metrics["health.solver_share.mean"].value == \
            pytest.approx(0.25)

    def test_summary_metrics(self, baseline):
        metrics = extract_metrics(load_run(baseline))
        assert metrics["run.wall_time_s"].value == 1.0
        assert metrics["run.instructions_per_sec"].value == 1000.0
        assert metrics["solver.cache_hit_ratio"].value == \
            pytest.approx(0.4)
        assert metrics["phase.solver.total_s"].value == \
            pytest.approx(0.2)

    def test_healthless_run_still_extracts_summary(self, tmp_path):
        path = write_run(tmp_path / "nohealth.jsonl", rates=[])
        metrics = extract_metrics(load_run(path))
        assert "health.steps_per_sec.mean" not in metrics
        assert "run.wall_time_s" in metrics


class TestCompare:
    def test_identical_runs_have_no_flags(self, baseline, tmp_path):
        other = write_run(tmp_path / "b.jsonl",
                          [1000.0, 1100.0, 1050.0])
        comparison = compare_runs(load_run(baseline), load_run(other))
        assert comparison.regressions == []
        assert comparison.improvements == []

    def test_injected_steps_per_sec_regression_is_flagged(
            self, baseline, tmp_path):
        # 30% slower than baseline: above the 20% default threshold.
        other = write_run(tmp_path / "slow.jsonl",
                          [700.0, 770.0, 735.0])
        comparison = compare_runs(load_run(baseline), load_run(other),
                                  threshold=DEFAULT_THRESHOLD)
        flagged = {row.name for row in comparison.regressions}
        assert "health.steps_per_sec.mean" in flagged
        assert "health.steps_per_sec.final" in flagged

    def test_direction_higher_means_increase_is_improvement(
            self, baseline, tmp_path):
        other = write_run(tmp_path / "fast.jsonl",
                          [2000.0, 2200.0, 2100.0])
        comparison = compare_runs(load_run(baseline), load_run(other))
        improved = {row.name for row in comparison.improvements}
        assert "health.steps_per_sec.mean" in improved
        assert not any(row.name.startswith("health.steps_per_sec")
                       for row in comparison.regressions)

    def test_lower_is_better_for_wall_time(self, baseline, tmp_path):
        other = write_run(tmp_path / "slower.jsonl",
                          [1000.0, 1100.0, 1050.0], wall_time=2.0)
        comparison = compare_runs(load_run(baseline), load_run(other))
        flagged = {row.name for row in comparison.regressions}
        assert "run.wall_time_s" in flagged

    def test_info_metrics_are_changed_never_regression(
            self, baseline, tmp_path):
        other = write_run(tmp_path / "more.jsonl",
                          [1000.0, 1100.0, 1050.0], defects=9)
        comparison = compare_runs(load_run(baseline), load_run(other))
        row = {r.name: r for r in comparison.rows}["run.defects"]
        assert row.flag == "changed"
        assert row.delta_ratio is None
        assert "run.defects" not in {r.name for r in
                                     comparison.regressions}

    def test_threshold_is_respected(self, baseline, tmp_path):
        # 30% regression passes a 50% threshold.
        other = write_run(tmp_path / "meh.jsonl", [700.0, 770.0, 735.0])
        comparison = compare_runs(load_run(baseline), load_run(other),
                                  threshold=0.5)
        assert not any(row.name.startswith("health.")
                       for row in comparison.regressions)

    def test_metric_only_in_one_run(self, baseline, tmp_path):
        other = write_run(tmp_path / "nohealth.jsonl", rates=[])
        comparison = compare_runs(load_run(baseline), load_run(other))
        gone = {row.name for row in comparison.rows
                if row.flag == "gone"}
        assert "health.steps_per_sec.mean" in gone

    def test_report_mentions_regressions(self, baseline, tmp_path):
        other = write_run(tmp_path / "slow.jsonl",
                          [700.0, 770.0, 735.0])
        report = compare_runs(load_run(baseline),
                              load_run(other)).report()
        assert "REGRESSION" in report
        assert "regressions:" in report


class TestEdgeCases:
    """Boundary semantics: exact threshold, one-sided metrics, zero
    baselines.  None of these may traceback; each must flag (or not)
    per the documented rules."""

    def test_regression_exactly_at_threshold_is_flagged(
            self, baseline, tmp_path):
        # 25% slower, with every division exact in binary floating
        # point: worse == threshold must still flag (>=, not >).
        other = write_run(tmp_path / "edge.jsonl",
                          [750.0, 825.0, 787.5])
        comparison = compare_runs(load_run(baseline), load_run(other),
                                  threshold=0.25)
        row = {r.name: r for r in
               comparison.rows}["health.steps_per_sec.mean"]
        assert row.delta_ratio == 0.25
        assert row.flag == "regression"

    def test_just_under_threshold_is_ok(self, baseline, tmp_path):
        other = write_run(tmp_path / "under.jsonl",
                          [750.0, 825.0, 787.5])
        comparison = compare_runs(load_run(baseline), load_run(other),
                                  threshold=0.2500001)
        row = {r.name: r for r in
               comparison.rows}["health.steps_per_sec.mean"]
        assert row.flag == "ok"

    def test_metric_missing_from_baseline_is_new(self, tmp_path):
        a = write_run(tmp_path / "a.jsonl", rates=[])
        b = write_run(tmp_path / "b.jsonl", [1000.0])
        comparison = compare_runs(load_run(a), load_run(b))
        row = {r.name: r for r in
               comparison.rows}["health.steps_per_sec.mean"]
        assert row.flag == "new"
        assert row.delta_ratio is None
        assert row.name not in {r.name for r in comparison.regressions}
        assert "NEW" in comparison.report()

    def test_metric_missing_from_candidate_is_gone(self, baseline,
                                                   tmp_path):
        other = write_run(tmp_path / "b.jsonl", rates=[])
        comparison = compare_runs(load_run(baseline), load_run(other))
        row = {r.name: r for r in
               comparison.rows}["health.steps_per_sec.mean"]
        assert row.flag == "gone"
        assert row.delta_ratio is None
        assert "GONE" in comparison.report()

    def test_zero_baseline_is_changed_not_divided(self, tmp_path):
        a = write_run(tmp_path / "a.jsonl", [1000.0], solver_checks=0)
        b = write_run(tmp_path / "b.jsonl", [1000.0], solver_checks=50)
        comparison = compare_runs(load_run(a), load_run(b))
        row = {r.name: r for r in comparison.rows}["solver.checks"]
        assert row.flag == "changed"
        assert row.delta_ratio is None
        assert row.name not in {r.name for r in comparison.regressions}
        # report() must render the zero-baseline row as "-", not raise
        # ZeroDivisionError.
        line = next(l for l in comparison.report().splitlines()
                    if l.strip().startswith("solver.checks "))
        assert "CHANGED" in line

    def test_zero_on_both_sides_is_ok(self, tmp_path):
        a = write_run(tmp_path / "a.jsonl", [1000.0], solver_checks=0)
        b = write_run(tmp_path / "b.jsonl", [1000.0], solver_checks=0)
        comparison = compare_runs(load_run(a), load_run(b))
        row = {r.name: r for r in comparison.rows}["solver.checks"]
        assert row.flag == "ok"
        assert row.delta_ratio is None


class TestDiffstatsCli:
    def test_exit_3_on_regression(self, baseline, tmp_path, capsys):
        from repro.cli import main
        other = write_run(tmp_path / "slow.jsonl",
                          [700.0, 770.0, 735.0])
        assert main(["diffstats", baseline, other]) == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_0_when_clean(self, baseline, tmp_path, capsys):
        from repro.cli import main
        other = write_run(tmp_path / "same.jsonl",
                          [1000.0, 1100.0, 1050.0])
        assert main(["diffstats", baseline, other]) == 0

    def test_zero_baseline_exits_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        a = write_run(tmp_path / "a.jsonl", [1000.0], solver_checks=0)
        b = write_run(tmp_path / "b.jsonl", [1000.0], solver_checks=75)
        assert main(["diffstats", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "CHANGED" in out and "Traceback" not in out
