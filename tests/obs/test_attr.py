"""Rule-level cost attribution: reconciliation, sampling, renderers.

Acceptance pins:
* attribution call counts reconcile with the phase profiler EXACTLY
  (eval calls == eval phase calls, solver checks == solver phase calls)
  on the exerciser kernel, on rv32 AND mips32; attributed time agrees
  within 5% and always encloses the phase total;
* flamegraph weights sum to the attributed total;
* the heat map / flamegraph / report round-trip through JSON (the
  sidecar wire format) unchanged;
* the attr block rides into the run store as ``attr.json`` and never
  perturbs the run key (observe-only);
* degenerate inputs (missing block, pre-v5 sidecar) degrade to empty
  output, never a traceback.
"""

import json

import pytest

from repro.cli import main
from repro.core import Engine, EngineConfig
from repro.obs import AttrConfig, Obs
from repro.obs.attr import (ATTR_SCHEMA_VERSION, ENGINE_BUCKET,
                            CostAttribution, annotate_spec_costs,
                            hot_report, hot_rules_lines, ir_kind)
from repro.obs.flame import chrome_trace, collapsed_stacks, render_collapsed
from repro.programs import build_kernel


def explore_attr(target, mode="full", sample_every=16, profile=True):
    model, image = build_kernel("exerciser", target)
    obs = Obs(metrics=True, profile=profile)
    config = EngineConfig(obs=obs,
                          attr=AttrConfig(mode, sample_every=sample_every))
    engine = Engine(model, config=config)
    engine.load_image(image)
    result = engine.explore()
    return engine, result, result.telemetry["attr"]


@pytest.fixture(scope="module", params=["rv32", "mips32"])
def full_run(request):
    """One full-mode instrumented exerciser exploration per ISA."""
    return request.param, explore_attr(request.param, mode="full")


class TestReconciliation:
    """The pinned contract: attr and profiler agree on the exerciser."""

    def test_call_counts_reconcile_exactly(self, full_run):
        _, (engine, _, block) = full_run
        reconcile = block["reconcile"]
        assert reconcile["eval"]["attr_calls"] \
            == reconcile["eval"]["phase_calls"] > 0
        assert reconcile["solver"]["attr_calls"] \
            == reconcile["solver"]["phase_calls"] > 0

    def test_times_reconcile_within_5_percent(self, full_run):
        _, (engine, _, block) = full_run
        for phase in ("eval", "solver"):
            attr_s = block["reconcile"][phase]["attr_s"]
            phase_s = block["reconcile"][phase]["phase_s"]
            # The attribution window encloses the phase scope: attr
            # time is a hair larger, never smaller...
            assert attr_s >= phase_s
            # ...and within 5% (plus a tiny absolute floor for
            # sub-millisecond phases on noisy CI boxes).
            assert attr_s <= phase_s * 1.05 + 0.005

    def test_rule_totals_sum_to_block_totals(self, full_run):
        _, (engine, _, block) = full_run
        rules = block["rules"].values()
        assert sum(rule["steps"] for rule in rules) == block["steps"]
        assert abs(sum(rule["eval_s"] for rule in rules)
                   - block["eval_s"]) < 1e-9
        assert abs(sum(rule["solver_s"] for rule in rules)
                   - block["solver_s"]) < 1e-9
        assert sum(rule["solver_checks"] for rule in rules) \
            == block["solver_checks"]
        assert sum(rule["forks"] for rule in rules) == block["forks"]

    def test_snapshot_shape_and_provenance(self, full_run):
        target, (engine, _, block) = full_run
        assert block["version"] == ATTR_SCHEMA_VERSION
        assert block["isa"] == target
        assert block["mode"] == "full"
        assert block["rules"], "exerciser must attribute rules"
        # Spec provenance rides along for the heat map.
        attributed = [name for name in block["rules"]
                      if name != ENGINE_BUCKET]
        assert attributed
        for name in attributed:
            entry = block["rules"][name]
            assert entry["mnemonic"]
            lo, hi = entry["lines"]
            assert 0 < lo <= hi

    def test_branch_sites_carry_solver_blame(self, full_run):
        _, (engine, _, block) = full_run
        sites = block["sites"]
        assert sites, "the exerciser branches on input"
        blamed = sum(entry["solver_s"] for entry in sites.values())
        assert blamed > 0
        assert blamed <= block["solver_s"] + 1e-9
        for pc, entry in sites.items():
            assert pc.startswith("0x")
            assert entry["rule"] in block["rules"]

    def test_ir_rollup_populates_in_full_mode(self, full_run):
        _, (engine, _, block) = full_run
        rollup = block["ir"]
        assert rollup
        # Operator-qualified kinds separate add from compare.
        assert any(kind.startswith("BinOp:") for kind in rollup)
        for entry in rollup.values():
            assert entry["self_s"] <= entry["total_s"] + 1e-9


class TestSampling:
    def test_sampled_mode_bounds_deep_steps(self):
        _, _, block = explore_attr("rv32", mode="sampled", sample_every=4)
        assert block["mode"] == "sampled"
        assert block["sample_every"] == 4
        # Deep steps are exactly every 4th step, starting at the first.
        assert block["deep_steps"] == (block["steps"] + 3) // 4
        # Rule-level charging still covers EVERY step.
        assert block["eval_calls"] == block["steps"]
        assert block["reconcile"]["eval"]["attr_calls"] \
            == block["reconcile"]["eval"]["phase_calls"]

    def test_full_mode_probes_every_step(self):
        _, _, block = explore_attr("rv32", mode="full")
        assert block["deep_steps"] == block["steps"]

    def test_attr_metrics_exported(self):
        engine, _, block = explore_attr("rv32", mode="sampled",
                                        sample_every=8)
        metrics = engine.config.obs.metrics
        assert metrics.counter("attr.steps").value == block["steps"]
        assert metrics.counter("attr.deep_steps").value \
            == block["deep_steps"]
        assert metrics.histogram("attr.step_eval_ms").count \
            == block["deep_steps"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            AttrConfig("always")


class TestUnitCharging:
    """CostAttribution in isolation: the ledger arithmetic."""

    def test_ir_self_time_excludes_children_and_solver(self):
        attr = CostAttribution(AttrConfig("full"))
        attr.begin_step("addi", 0x1000)
        attr.ir_enter("BinOp:add")
        attr.ir_enter("Const")
        attr.ir_exit()
        attr.on_solver_check(0.5, "sat")
        attr.ir_exit()
        attr.end_step(0.001)
        cost = attr.rules["addi"]
        outer = cost.ir["BinOp:add"]
        inner = cost.ir["Const"]
        # The child's elapsed and the solver's 0.5s are both excluded
        # from the outer frame's self time.
        assert outer.self_time <= outer.total - inner.total - 0.5 + 1e-6
        assert cost.solver_by_ir["BinOp:add"] == 0.5
        assert cost.solver_s == 0.5

    def test_out_of_step_solver_work_hits_engine_bucket(self):
        attr = CostAttribution(AttrConfig())
        attr.on_solver_check(0.25, "sat")
        attr.on_solver_cache("exact")
        block = attr.snapshot()
        assert block["rules"][ENGINE_BUCKET]["solver_s"] == 0.25
        assert block["rules"][ENGINE_BUCKET]["cache_hits"] == 1

    def test_zero_activity_rules_dropped_from_snapshot(self):
        attr = CostAttribution(AttrConfig())
        block = attr.snapshot()
        assert block["rules"] == {}
        assert block["sites"] == {}

    def test_ir_kind_labels(self):
        from repro.ir import nodes as N
        const = N.Const(1, 8)
        assert ir_kind(const) == "Const"
        assert ir_kind(N.BinOp("add", const, const, 8)) == "BinOp:add"
        assert ir_kind(N.UnOp("not", const, 8)) == "UnOp:not"


class TestFlamegraph:
    def test_weights_sum_to_attributed_total(self, full_run):
        _, (engine, _, block) = full_run
        stacks = collapsed_stacks(block)
        assert stacks
        total_us = sum(frame["us"] for frame in stacks)
        want_us = (block["eval_s"] + block["solver_s"]) * 1e6
        # Integer-microsecond rounding: one count per emitted line.
        assert abs(total_us - want_us) <= len(stacks) + 1

    def test_collapsed_format_round_trips_json(self, full_run):
        target, (engine, _, block) = full_run
        wire = json.loads(json.dumps(block))
        text = render_collapsed(wire)
        for line in text.splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack.startswith(target + ";")
            assert int(weight) > 0
        assert text == render_collapsed(block)

    def test_solver_frames_present(self, full_run):
        _, (engine, _, block) = full_run
        text = render_collapsed(block)
        assert ";solver " in text

    def test_chrome_trace_shape(self, full_run):
        _, (engine, _, block) = full_run
        trace = json.loads(json.dumps(chrome_trace(block)))
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0


class TestRenderers:
    def test_hot_report_round_trips_json(self, full_run):
        _, (engine, _, block) = full_run
        wire = json.loads(json.dumps(block))
        text = hot_report(wire)
        assert "cost attribution" in text
        assert "hottest rules:" in text
        assert "reconcile eval" in text
        assert text == hot_report(block)

    def test_min_share_filters_rows(self, full_run):
        _, (engine, _, block) = full_run
        everything = hot_rules_lines(block, top=100, min_share=0.0)
        dominant = hot_rules_lines(block, top=100, min_share=0.99)
        assert len(dominant) < len(everything)

    def test_annotate_emits_heat_margins(self, full_run):
        target, (engine, _, block) = full_run
        wire = json.loads(json.dumps(block))
        text = annotate_spec_costs(wire)
        lines = text.splitlines()
        with open(block["source"]) as handle:
            source_len = len(handle.read().splitlines())
        assert len(lines) == source_len + 3        # header + blank
        assert any("%" in line.split("|", 1)[0] for line in lines[3:])
        # Every source line survives verbatim to the right of the bar.
        assert lines[3:][0].split("|", 1)[1] is not None

    def test_degenerate_inputs_never_traceback(self):
        assert hot_rules_lines(None) == []
        assert hot_rules_lines({"rules": "oops"}) == []
        assert hot_rules_lines({}) == []
        assert "no attribution block" in hot_report(None)
        assert "no attribution block" in hot_report({"steps": 3})
        assert collapsed_stacks(None) == []
        assert render_collapsed({}) == ""
        assert chrome_trace(None)["traceEvents"] == []
        with pytest.raises(ValueError):
            annotate_spec_costs({"not": "a block"})


class TestRunStore:
    def test_attr_json_artifact_round_trips(self, tmp_path):
        from repro.runstore import RunStore, record_exploration

        model, image = build_kernel("maze", "rv32", depth=2, solution=0b10)
        store = RunStore(str(tmp_path / "store"))
        config = EngineConfig(obs=Obs(metrics=True, profile=True),
                              attr=AttrConfig("full"))
        result, stored = record_exploration(store, model, image, config)
        block = stored.attr()
        assert block is not None
        assert block["version"] == ATTR_SCHEMA_VERSION
        assert block == result.telemetry["attr"]

    def test_attr_never_perturbs_the_run_key(self, tmp_path):
        from repro.runstore import RunStore, run_key, spec_digest

        model, image = build_kernel("maze", "rv32", depth=2, solution=0b10)
        store = RunStore(str(tmp_path / "store"))
        spec = spec_digest(model)
        plain = run_key(model.name, spec, image, EngineConfig(), "dfs",
                        0, [])
        attributed = run_key(model.name, spec, image,
                             EngineConfig(attr=AttrConfig("full")),
                             "dfs", 0, [])
        assert store.run_id_for(plain) == store.run_id_for(attributed)

    def test_missing_artifact_degrades_to_none(self, tmp_path):
        from repro.runstore import RunStore, record_exploration

        model, image = build_kernel("maze", "rv32", depth=2, solution=0b10)
        store = RunStore(str(tmp_path / "store"))
        result, stored = record_exploration(store, model, image,
                                            EngineConfig())
        assert stored.attr() is None


BRANCHY = """
.org 0x1000
.entry start
start:
    inb x1
    addi x2, x0, 10
    beq x1, x2, yes
    addi x3, x0, 1
    jal x0, done
yes:
    addi x3, x0, 2
done:
    outb x3
    halt 0
"""


class TestCli:
    @pytest.fixture
    def branchy(self, tmp_path):
        path = tmp_path / "branchy.s"
        path.write_text(BRANCHY)
        return str(path)

    @pytest.fixture
    def sidecar(self, branchy, tmp_path, capsys):
        out = str(tmp_path / "run.jsonl")
        assert main(["explore", "rv32", branchy, "--attr", "full",
                     "--profile", "--telemetry-out", out]) == 0
        capsys.readouterr()
        return out

    def test_explore_prints_attr_report(self, branchy, capsys):
        assert main(["explore", "rv32", branchy, "--attr"]) == 0
        out = capsys.readouterr().out
        assert "cost attribution" in out
        assert "hottest rules:" in out

    def test_runfile_attr_block_accessor(self, sidecar):
        from repro.obs import load_run
        block = load_run(sidecar).attr_block()
        assert block is not None
        assert block["version"] == ATTR_SCHEMA_VERSION

    def test_runfile_attr_block_tolerates_plain_runs(self, branchy,
                                                     tmp_path, capsys):
        from repro.obs import load_run
        out = str(tmp_path / "plain.jsonl")
        assert main(["explore", "rv32", branchy,
                     "--telemetry-out", out]) == 0
        capsys.readouterr()
        assert load_run(out).attr_block() is None

    def test_hot_from_sidecar(self, sidecar, capsys):
        assert main(["hot", sidecar]) == 0
        out = capsys.readouterr().out
        assert "cost attribution" in out
        assert "beq" in out
        assert "reconcile eval" in out

    def test_hot_json_round_trips(self, sidecar, capsys):
        assert main(["hot", sidecar, "--json"]) == 0
        block = json.loads(capsys.readouterr().out)
        assert block["version"] == ATTR_SCHEMA_VERSION
        assert block["rules"]

    def test_hot_writes_flamegraph_and_trace(self, sidecar, tmp_path,
                                             capsys):
        folded = str(tmp_path / "out.folded")
        trace = str(tmp_path / "out.json")
        assert main(["hot", sidecar, "--flame", folded,
                     "--trace", trace]) == 0
        capsys.readouterr()
        with open(folded) as handle:
            lines = handle.read().splitlines()
        assert lines and all(line.startswith("rv32;") for line in lines)
        with open(trace) as handle:
            assert json.load(handle)["traceEvents"]

    def test_hot_annotate_heat_map(self, sidecar, tmp_path, capsys):
        out = str(tmp_path / "heat.txt")
        assert main(["hot", sidecar, "--annotate", "--out", out]) == 0
        capsys.readouterr()
        with open(out) as handle:
            text = handle.read()
        assert "spec cost heat map: rv32" in text
        assert "%" in text

    def test_stats_shows_hottest_rules(self, sidecar, capsys):
        assert main(["stats", sidecar]) == 0
        out = capsys.readouterr().out
        assert "hottest rules" in out
        assert "beq" in out

    def test_hot_from_store_run_id(self, branchy, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["record", "rv32", branchy, "--store", store]) == 0
        out = capsys.readouterr().out
        run_id = out.split("recorded ")[1].split()[0]
        assert main(["hot", run_id, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "cost attribution" in out
        assert "beq" in out

    def test_hot_without_attr_is_clean_error(self, branchy, tmp_path,
                                             capsys):
        out = str(tmp_path / "plain.jsonl")
        assert main(["explore", "rv32", branchy,
                     "--telemetry-out", out]) == 0
        capsys.readouterr()
        assert main(["hot", out]) == 1
        err = capsys.readouterr().err
        assert "no cost-attribution block" in err

    def test_hot_unknown_target_is_clean_error(self, tmp_path, capsys):
        assert main(["hot", "deadbeef", "--store",
                     str(tmp_path / "empty")]) == 1
        assert "neither" in capsys.readouterr().err

    def test_stats_degrades_without_attr(self, branchy, tmp_path,
                                         capsys):
        out = str(tmp_path / "plain.jsonl")
        assert main(["explore", "rv32", branchy,
                     "--telemetry-out", out]) == 0
        capsys.readouterr()
        assert main(["stats", out]) == 0
        assert "hottest rules" not in capsys.readouterr().out

    def test_record_off_skips_attribution(self, branchy, tmp_path,
                                          capsys):
        store = str(tmp_path / "store")
        assert main(["record", "rv32", branchy, "--store", store,
                     "--attr", "off"]) == 0
        out = capsys.readouterr().out
        run_id = out.split("recorded ")[1].split()[0]
        assert main(["hot", run_id, "--store", store]) == 1
        assert "no cost-attribution profile" in capsys.readouterr().err
