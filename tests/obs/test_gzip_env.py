"""Gzip-compressed sidecars and the schema-v4 ``env`` provenance block.

PR 6 satellites: ``.jsonl.gz`` targets round-trip through the same
writer/reader pair as plain JSONL, the schema meta record carries an
environment snapshot, and readers stay tolerant of pre-v4 sidecars and
truncated compressed streams.
"""

import gzip
import json

import pytest

from repro.obs.events import EventTracer
from repro.obs.sinks import JsonlSink, TelemetryError, load_run, read_run
from repro.obs.tree import ExecutionTree


def emit_demo(path, count=3, env=None):
    sink = JsonlSink(str(path), env=env)
    tracer = EventTracer(isa="rv32")
    tracer.add_sink(sink)
    for index in range(count):
        tracer.emit("step", state_id=0, pc=0x1000 + 4 * index,
                    instr="addi")
    tracer.emit("path_end", state_id=0, pc=0x1000 + 4 * count,
                status="halted", exit_code=0)
    sink.write_meta({"record": "run_summary", "paths": 1, "defects": 0,
                     "wall_time": 0.5, "instructions": count})
    sink.close()
    return str(path)


class TestGzipSidecars:
    def test_gz_target_is_actually_compressed(self, tmp_path):
        path = emit_demo(tmp_path / "run.jsonl.gz")
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"   # gzip magic

    def test_gz_round_trip_matches_plain(self, tmp_path):
        plain = emit_demo(tmp_path / "run.jsonl")
        packed = emit_demo(tmp_path / "run.jsonl.gz")
        run_a, run_b = load_run(plain), load_run(packed)
        assert [e.kind for e in run_a.events] == \
            [e.kind for e in run_b.events]
        assert [e.pc for e in run_a.events] == \
            [e.pc for e in run_b.events]
        assert run_b.run_summary()["paths"] == 1

    def test_readers_work_on_gz(self, tmp_path):
        path = emit_demo(tmp_path / "run.jsonl.gz")
        events, meta = read_run(path)
        assert len(events) == 4
        tree = ExecutionTree.from_events(load_run(path).events)
        assert tree.nodes

    def test_truncated_gz_keeps_prefix_with_warning(self, tmp_path):
        path = emit_demo(tmp_path / "big.jsonl.gz", count=500)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        run = load_run(path)
        assert run.warnings            # stream-ends-early or bad line
        assert 0 < len(run.events) < 501

    def test_unreadable_gz_is_one_line_error(self, tmp_path):
        path = tmp_path / "dead.jsonl.gz"
        path.write_bytes(b"\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\x03")
        with pytest.raises(TelemetryError):
            load_run(str(path))


class TestEnvProvenance:
    def test_schema_meta_carries_env_block(self, tmp_path):
        run = load_run(emit_demo(tmp_path / "run.jsonl"))
        env = run.environment()
        assert env["python"]
        assert env["platform"]
        assert env["package"] == "repro"

    def test_caller_env_merges_into_block(self, tmp_path):
        run = load_run(emit_demo(
            tmp_path / "run.jsonl",
            env={"argv": ["explore", "rv32"],
                 "spec_digests": {"rv32": "sha256:abc"}}))
        env = run.environment()
        assert env["argv"] == ["explore", "rv32"]
        assert env["spec_digests"] == {"rv32": "sha256:abc"}
        assert env["python"]            # defaults survive the merge

    def test_pre_v4_sidecar_tolerated(self, tmp_path):
        path = tmp_path / "old.jsonl"
        lines = [{"kind": "meta", "record": "schema", "version": 3},
                 {"v": 1, "kind": "step", "ts": 0.0, "isa": "rv32",
                  "state_id": 0, "pc": 4096, "data": {}}]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        run = load_run(str(path))
        assert run.environment() == {}
        assert len(run.events) == 1

    def test_env_block_survives_gzip(self, tmp_path):
        path = emit_demo(tmp_path / "run.jsonl.gz")
        with gzip.open(path, "rt") as handle:
            first = json.loads(handle.readline())
        assert first["record"] == "schema"
        assert "env" in first
        assert load_run(path).environment()["python"]
