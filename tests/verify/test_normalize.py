"""Soundness of the truncation push-down normalizer.

``canon(t, w)`` must agree with ``t`` on the low ``w`` bits under every
assignment — it is the identity the whole translation validator leans
on when it collapses generated ``& 0xffffffff`` masks onto reference
terms.  Checked here by exhaustive/random concrete evaluation, no
solver involved.
"""

import random

import pytest

from repro.smt import terms as T
from repro.smt.normalize import canon, lower


def _vars():
    a = T.var("nrm_a", 8)
    b = T.var("nrm_b", 8)
    c = T.var("nrm_c", 16)
    return a, b, c


def _sample_terms():
    a, b, c = _vars()
    return [
        T.add(a, b),
        T.sub(a, b),
        T.mul(a, b),
        T.and_(a, T.bv(0x0F, 8)),
        T.or_(a, b),
        T.xor(a, b),
        T.not_(a),
        T.zext(T.add(a, b), 8),
        T.sext(a, 8),
        T.concat(a, b),
        T.extract(c, 11, 4),
        T.shl(T.zext(a, 8), T.bv(3, 16)),
        T.ite(T.eq(a, b), T.add(a, T.bv(1, 8)), b),
        T.and_(T.zext(T.add(a, b), 24), T.bv(0xFFFF, 32)),
        T.add(T.zext(a, 24), T.zext(T.mul(b, b), 24)),
        T.sext(T.extract(T.add(a, b), 7, 0), 8),
    ]


def _assignments(count=64, seed=1234):
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        rows.append({"nrm_a": rng.randrange(1 << 8),
                     "nrm_b": rng.randrange(1 << 8),
                     "nrm_c": rng.randrange(1 << 16)})
    rows.append({"nrm_a": 0, "nrm_b": 0, "nrm_c": 0})
    rows.append({"nrm_a": 0xFF, "nrm_b": 0xFF, "nrm_c": 0xFFFF})
    return rows


@pytest.mark.parametrize("position", range(len(_sample_terms())))
def test_lower_preserves_low_bits(position):
    term = _sample_terms()[position]
    for width in sorted({1, 3, term.width // 2 or 1, term.width}):
        narrowed = lower(term, width, {})
        assert narrowed.width == width
        for env in _assignments():
            assert T.evaluate(narrowed, env) \
                == T.evaluate(term, env) & T.mask(width), (term, width)


@pytest.mark.parametrize("position", range(len(_sample_terms())))
def test_canon_is_semantics_preserving(position):
    term = _sample_terms()[position]
    canonical = canon(term, term.width, {}, {})
    for env in _assignments(count=32):
        assert T.evaluate(canonical, env) == T.evaluate(term, env)


def test_canon_collapses_full_width_mask():
    a, b, _ = _vars()
    summed = canon(T.add(a, b), 8, {}, {})
    masked = canon(T.and_(T.add(a, b), T.bv(0xFF, 8)), 8, {}, {})
    assert masked is summed  # hash-consed identity, not mere equality


def test_canon_folds_zext_then_truncate():
    a, _, _ = _vars()
    widened = T.extract(T.zext(a, 24), 7, 0)
    assert canon(widened, 8, {}, {}) is canon(a, 8, {}, {})


def test_lower_rejects_widening():
    a, _, _ = _vars()
    with pytest.raises(T.WidthError):
        lower(a, 16, {})
