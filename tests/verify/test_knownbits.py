"""Soundness of the known-bits abstract domain.

For every term and every concrete assignment, a bit the domain claims
to know must match the evaluated value — the one-sided guarantee the
validator's cheap pre-pass tiers rely on.
"""

import random

import pytest

from repro.smt import terms as T
from repro.smt.knownbits import (definitely_equal, definitely_unequal,
                                 known_bits, significant_width)


def _vars():
    return T.var("kb_a", 8), T.var("kb_b", 8)


def _sample_terms():
    a, b = _vars()
    return [
        T.bv(0xA5, 8),
        a,
        T.and_(a, T.bv(0xF0, 8)),
        T.or_(a, T.bv(0x0F, 8)),
        T.xor(a, b),
        T.not_(a),
        T.zext(a, 8),
        T.sext(T.bv(0x80, 8), 8),
        T.extract(T.concat(a, b), 11, 4),
        T.add(T.and_(a, T.bv(0x0F, 8)), T.bv(1, 8)),
        T.sub(a, a),
        T.mul(a, T.bv(4, 8)),
        T.shl(a, T.bv(3, 8)),
        T.lshr(a, T.bv(5, 8)),
        T.ashr(a, T.bv(5, 8)),
        T.ite(T.eq(a, b), T.bv(3, 8), T.bv(1, 8)),
        T.eq(T.and_(a, T.bv(0, 8)), T.bv(0, 8)),
    ]


def _assignments(count=128, seed=99):
    rng = random.Random(seed)
    rows = [{"kb_a": rng.randrange(256), "kb_b": rng.randrange(256)}
            for _ in range(count)]
    rows += [{"kb_a": 0, "kb_b": 0}, {"kb_a": 255, "kb_b": 255},
             {"kb_a": 0x80, "kb_b": 0x7F}]
    return rows


@pytest.mark.parametrize("position", range(len(_sample_terms())))
def test_known_bits_sound(position):
    term = _sample_terms()[position]
    known, value = known_bits(term, {})
    assert known & ~T.mask(term.width) == 0
    for env in _assignments():
        concrete = T.evaluate(term, env)
        assert concrete & known == value & known, (term, env)


@pytest.mark.parametrize("position", range(len(_sample_terms())))
def test_significant_width_sound(position):
    term = _sample_terms()[position]
    width = significant_width(term, {})
    assert 1 <= width <= term.width
    for env in _assignments(count=64):
        assert T.evaluate(term, env) <= T.mask(width), (term, width)


def test_constant_fully_known():
    known, value = known_bits(T.bv(0x5A, 8), {})
    assert known == 0xFF and value == 0x5A


def test_definite_equality_decisions_sound():
    a, _ = _vars()
    low = T.and_(a, T.bv(0x0F, 8))
    assert definitely_equal(low, T.and_(a, T.bv(0x0F, 8)), {})
    # Disjoint known bits: 0x10 | low can never equal low.
    assert definitely_unequal(T.or_(low, T.bv(0x10, 8)), low, {})
    # A free variable is never definitely anything vs a constant.
    assert not definitely_equal(a, T.bv(0, 8), {})
    assert not definitely_unequal(a, T.bv(0, 8), {})
