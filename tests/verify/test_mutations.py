"""Mutation corpus: seeded codegen bugs the validator must catch.

Four representative codegen-bug classes are injected into generated
rv32 transfer functions — a flipped mask literal, a dropped
sign-extension, two reordered effects, an off-by-one shift amount —
and the validator must report each with a concrete counterexample
whose witness actually separates the mutant from the original
function when executed.

The last test is the reason the validator exists at all: a mutation
the *dynamic* differential harness (``tests/compile/``) cannot see —
because the exerciser kernel never drives the mutated rule into the
corrupted operand region — is still caught statically, because the
proof quantifies over every decodable operand assignment and machine
pre-state.
"""

import re

import pytest

from repro.compile import compiled_for
from repro.compile.concrete import _HELPERS
from repro.isa import build
from repro.isa.simulator import run_image
from repro.programs import build_kernel
from repro.verify import COUNTEREXAMPLE, seeded_mutation, verify_model


def _mutate_drop_sign_extension(source):
    # lb: forget to sign-extend the loaded byte.
    assert " - ((_w2 & 0x80) << 1)" in source
    return source.replace(" - ((_w2 & 0x80) << 1)", "", 1)


def _mutate_reorder_effects(source):
    # jalr: compute the branch target *after* writing the link
    # register — visibly wrong when rd aliases rs1.
    lines = source.split("\n")
    position = next(index for index, line in enumerate(lines)
                    if line.strip().startswith("u_target"))
    assert "write_reg" in lines[position + 1]
    lines[position], lines[position + 1] = \
        lines[position + 1], lines[position]
    return "\n".join(lines)


def _mutate_shift_amount(source):
    # sll: shift by one more than the architecture says.
    assert "& 31), 32," in source
    return source.replace("& 31), 32,", "& 31) + 1, 32,", 1)


MUTATIONS = [
    ("add", "flipped-mask", seeded_mutation),
    ("lb", "dropped-sign-extension", _mutate_drop_sign_extension),
    ("jalr", "reordered-effects", _mutate_reorder_effects),
    ("sll", "off-by-one-shift", _mutate_shift_amount),
]


def _compile_source(source):
    namespace = dict(_HELPERS)
    exec(compile(source, "<mutant>", "exec"), namespace)
    return namespace[re.search(r"def (\w+)\(", source).group(1)]


@pytest.mark.parametrize("rule,label,mutate",
                         MUTATIONS, ids=[m[1] for m in MUTATIONS])
def test_mutation_caught_with_counterexample(rule, label, mutate):
    model = build("rv32")
    source = compiled_for(model).concrete[rule].generated_source
    mutated = mutate(source)
    assert mutated != source
    results = {r.rule: r
               for r in verify_model(model, "concrete",
                                     source_overrides={rule: mutated})}
    result = results[rule]
    assert result.status == COUNTEREXAMPLE, result.detail
    ce = result.counterexamples[0]
    # The witness is a decodable instance of the mutated rule with a
    # two-sided valuation showing the divergence.
    assert ce.rule == rule
    assert 0 <= ce.word < (1 << (8 * ce.length))
    assert ce.ref_value != ce.cand_value
    # ... and every other rule still verifies clean.
    assert all(r.status == "proved" for name, r in results.items()
               if name != rule)


def test_clean_sources_not_flagged():
    model = build("rv32")
    source = compiled_for(model).concrete["add"].generated_source
    results = verify_model(model, "concrete",
                           source_overrides={"add": source})
    assert all(r.status == "proved" for r in results)


def test_validator_catches_what_dynamic_harness_misses():
    """A flipped register-index mask corrupts behavior only for
    operand values the exerciser kernel never produces: the dynamic
    differential run is bit-for-bit identical (the harness misses the
    bug), while the static proof still finds a counterexample."""
    model, image = build_kernel("exerciser", "rv32")
    table = compiled_for(model).concrete
    rule = "xor"
    source = table[rule].generated_source
    mutated = seeded_mutation(source)

    def final_state(compiled):
        sim = run_image(model, image,
                        input_bytes=b"\xff\x7f\x01\x02\x03\x04\x05\x06",
                        max_steps=20000, compiled=compiled)
        return (sim.output, sim.halted, sim.exit_code, sim.trapped,
                sim.state.pc, sim.state.regfiles, sim.state.registers,
                sim.state.memory, sim.instruction_count)

    baseline = final_state(compiled=False)
    original = table[rule]
    table[rule] = _compile_source(mutated)
    try:
        dynamic_missed = final_state(compiled=True) == baseline
    finally:
        table[rule] = original
    assert dynamic_missed, (
        "exerciser differential unexpectedly detected the mutation — "
        "pick a different rule for the miss demonstration")
    results = {r.rule: r
               for r in verify_model(model, "concrete",
                                     source_overrides={rule: mutated})}
    assert results[rule].status == COUNTEREXAMPLE
    assert results[rule].counterexamples[0].word is not None
