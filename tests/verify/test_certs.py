"""Verification certificates: keying, caching, and invalidation."""

import json
import os

from repro.lint import LintConfig, run_lint
from repro.runstore.certs import (certificate_key, load_certificate,
                                  save_certificate)

SUMMARY = {"isa": "rv32", "mode": "concrete", "rules": 48, "proved": 48,
           "tiers": {}, "seconds": 0.1}


class TestKeying:
    def test_every_component_changes_the_key(self):
        base = certificate_key("sha256:aa", 2, 1, "transval-concrete")
        assert certificate_key("sha256:bb", 2, 1,
                               "transval-concrete") != base
        assert certificate_key("sha256:aa", 3, 1,
                               "transval-concrete") != base
        assert certificate_key("sha256:aa", 2, 2,
                               "transval-concrete") != base
        assert certificate_key("sha256:aa", 2, 1,
                               "transval-symbolic") != base

    def test_key_is_deterministic(self):
        assert certificate_key("sha256:aa", 2, 1, "p") \
            == certificate_key("sha256:aa", 2, 1, "p")


class TestStore:
    def test_round_trip(self, tmp_path):
        root = str(tmp_path)
        path = save_certificate("sha256:aa", 2, 1, "transval-concrete",
                                SUMMARY, store_root=root)
        assert os.path.exists(path)
        cert = load_certificate("sha256:aa", 2, 1, "transval-concrete",
                                store_root=root)
        assert cert is not None
        assert cert["summary"] == SUMMARY
        assert cert["spec"] == "sha256:aa"

    def test_miss_on_any_version_bump(self, tmp_path):
        root = str(tmp_path)
        save_certificate("sha256:aa", 2, 1, "p", SUMMARY, store_root=root)
        assert load_certificate("sha256:bb", 2, 1, "p",
                                store_root=root) is None
        assert load_certificate("sha256:aa", 3, 1, "p",
                                store_root=root) is None
        assert load_certificate("sha256:aa", 2, 2, "p",
                                store_root=root) is None

    def test_corrupt_certificate_is_a_miss(self, tmp_path):
        root = str(tmp_path)
        path = save_certificate("sha256:aa", 2, 1, "p", SUMMARY,
                                store_root=root)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert load_certificate("sha256:aa", 2, 1, "p",
                                store_root=root) is None

    def test_key_mismatch_inside_payload_is_a_miss(self, tmp_path):
        root = str(tmp_path)
        path = save_certificate("sha256:aa", 2, 1, "p", SUMMARY,
                                store_root=root)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["key"] = "sha256:forged"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert load_certificate("sha256:aa", 2, 1, "p",
                                store_root=root) is None


class TestLintIntegration:
    def _run(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        config = LintConfig(families=["transval"])
        return run_lint("vlx", config=config)

    def test_cold_then_cached(self, monkeypatch, tmp_path):
        cold = self._run(monkeypatch, tmp_path)
        assert all(not f.details.get("cached") for f in cold.findings)
        assert os.path.isdir(os.path.join(str(tmp_path), "certs"))
        cached = self._run(monkeypatch, tmp_path)
        assert cached.findings
        assert all(f.severity == "info" and f.details.get("cached")
                   for f in cached.findings)

    def test_seeded_bug_bypasses_certificates(self, monkeypatch,
                                              tmp_path):
        self._run(monkeypatch, tmp_path)  # warm the certificates
        monkeypatch.setenv("REPRO_TRANSVAL_SEED_BUG", "vlx:add")
        seeded = self._run(monkeypatch, tmp_path)
        errors = [f for f in seeded.findings if f.severity == "error"]
        assert errors and errors[0].pass_id == "transval-concrete"
        assert errors[0].witness is not None
        # The seeded run neither used nor clobbered the clean certs.
        monkeypatch.delenv("REPRO_TRANSVAL_SEED_BUG")
        clean = self._run(monkeypatch, tmp_path)
        assert all(f.severity == "info" and f.details.get("cached")
                   for f in clean.findings)
