"""End-to-end translation validation: every shipped ISA verifies clean.

The acceptance bar for the ``transval-*`` passes: both compiled
artifacts (generated concrete Python, symbolic plans) of every rule of
every shipped spec are statically proved equivalent to the reference
IR — no counterexamples, and no silently skipped rules (an unsupported
rule would surface as an explicit non-proved verdict and fail here).
"""

import pytest

from repro.isa import build
from repro.verify import PROVED, TIERS, verify_model

ALL_TARGETS = ["rv32", "mips32", "armlite", "pred32", "vlx"]
MODES = ["concrete", "symbolic"]


@pytest.mark.parametrize("target", ALL_TARGETS)
@pytest.mark.parametrize("mode", MODES)
def test_every_rule_proved(target, mode):
    model = build(target)
    results = verify_model(model, mode)
    # One explicit verdict per rule — the "no silent skips" guarantee.
    assert [r.rule for r in results] \
        == [i.name for i in model.instructions]
    not_proved = [(r.rule, r.status, r.detail) for r in results
                  if r.status != PROVED]
    assert not_proved == []
    # Every proved rule explored at least one path on each side.
    assert all(r.ref_paths >= 1 and r.cand_paths >= 1 for r in results)


@pytest.mark.parametrize("target", ALL_TARGETS)
def test_tier_statistics_populated(target):
    model = build(target)
    results = verify_model(model, "concrete")
    totals = {key: 0 for key in TIERS}
    for result in results:
        assert set(result.tiers) == set(TIERS)
        for key, count in result.tiers.items():
            assert count >= 0
            totals[key] += count
    # The cheap tiers must carry the bulk: hash-consed identity
    # discharges obligations without any solver involvement.
    assert totals["identity"] > 0
    assert totals["identity"] > totals["solver"]


def test_branching_rules_enumerate_both_sides():
    model = build("rv32")
    results = {r.rule: r for r in verify_model(model, "concrete")}
    beq = results["beq"]
    assert beq.status == PROVED
    assert beq.ref_paths == 2 and beq.cand_paths == 2


def test_result_serialization_round_trips():
    model = build("vlx")
    for result in verify_model(model, "symbolic"):
        record = result.to_dict()
        assert record["rule"] == result.rule
        assert record["status"] == "proved"
        assert set(record["tiers"]) == set(TIERS)
