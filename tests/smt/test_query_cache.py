"""Unit tests for the solver query cache (repro.smt.cache) and the
canonical query digests (terms.digest / terms.query_key), plus the
regression pinning the model-cache LRU fix (bounded OrderedDict with
O(1) eviction replacing the old ``list.pop(0)`` FIFO)."""

from repro.smt import SAT, UNSAT, Solver
from repro.smt import terms as T
from repro.smt.cache import QueryCache


def pred(name, value, width=8):
    return T.ult(T.var(name, width), T.bv(value, width))


class TestDigest:
    def test_digest_is_structural_and_memoized(self):
        a = T.add(T.var("qa", 8), T.bv(1, 8))
        b = T.add(T.var("qa", 8), T.bv(1, 8))
        assert T.digest(a) == T.digest(b)
        # Memoized on the term (second call is the cached bytes).
        assert T.digest(a) is T.digest(a)

    def test_digest_distinguishes_structure(self):
        assert T.digest(T.var("qa", 8)) != T.digest(T.var("qb", 8))
        assert T.digest(T.bv(1, 8)) != T.digest(T.bv(1, 16))
        assert T.digest(T.add(T.var("qa", 8), T.bv(1, 8))) \
            != T.digest(T.sub(T.var("qa", 8), T.bv(1, 8)))

    def test_digest_stable_across_pools(self):
        """Digests depend on structure only, never on pool identity —
        the property that keeps cache keys valid across ablation pools."""
        term = T.xor(T.var("qa", 8), T.bv(0x5a, 8))
        reference = T.digest(term)
        pool = T.TermPool(hash_consing=False, simplify=False)
        previous = T.set_pool(pool)
        try:
            rebuilt = T.xor(T.var("qa", 8), T.bv(0x5a, 8))
            assert T.digest(rebuilt) == reference
        finally:
            T.set_pool(previous)

    def test_query_key_order_and_duplication_independent(self):
        a, b = pred("qa", 9), pred("qb", 17)
        assert T.query_key([a, b]) == T.query_key([b, a])
        assert T.query_key([a, b, a]) == T.query_key([a, b])
        assert T.query_key([a]) != T.query_key([a, b])


class TestQueryCache:
    def test_exact_hit_returns_entry_and_model(self):
        cache = QueryCache()
        key = T.query_key([pred("qa", 5)])
        cache.store(key, SAT, {"qa": 1})
        entry = cache.lookup(key)
        assert entry is not None
        assert entry.verdict == SAT
        assert entry.model == {"qa": 1}
        assert cache.lookup(T.query_key([pred("qa", 6)])) is None

    def test_lru_bound_and_eviction_order(self):
        cache = QueryCache(max_entries=3)
        keys = [T.query_key([pred("qa", value)]) for value in range(4)]
        for key in keys[:3]:
            cache.store(key, SAT, {})
        # Refresh keys[0] so keys[1] is the least recently used.
        assert cache.lookup(keys[0]) is not None
        cache.store(keys[3], SAT, {})
        assert len(cache) == 3
        assert cache.evictions == 1
        assert cache.lookup(keys[1]) is None          # evicted (LRU)
        assert cache.lookup(keys[0]) is not None      # survived (refreshed)

    def test_unsat_subsumption_on_supersets_only(self):
        cache = QueryCache()
        a, b, c = pred("qa", 5), pred("qb", 9), pred("qc", 13)
        unsat_key = T.query_key([a, b])
        cache.store(unsat_key, UNSAT)
        assert cache.subsumes_unsat(T.query_key([a, b, c]))   # superset
        assert cache.subsumes_unsat(unsat_key)                # itself
        assert not cache.subsumes_unsat(T.query_key([a]))     # subset
        assert not cache.subsumes_unsat(T.query_key([a, c]))  # overlap

    def test_unsat_sets_dedup_supersets(self):
        """Storing a *smaller* unsat set drops stored supersets of it."""
        cache = QueryCache()
        a, b = pred("qa", 5), pred("qb", 9)
        cache.store(T.query_key([a, b]), UNSAT)
        cache.store(T.query_key([a]), UNSAT)
        assert cache.stats()["unsat_sets"] == 1
        # Subsumption still covers the superset via the smaller set.
        assert cache.subsumes_unsat(T.query_key([a, b]))

    def test_unsat_set_bound(self):
        cache = QueryCache(max_unsat_sets=2)
        keys = [T.query_key([pred("qa", v), pred("qb", v)])
                for v in range(3)]
        for key in keys:
            cache.store(key, UNSAT)
        assert cache.stats()["unsat_sets"] == 2
        assert not cache.subsumes_unsat(keys[0])  # oldest dropped

    def test_recent_models_zero_first_newest_next(self):
        cache = QueryCache(model_probe=2)
        key = T.query_key([pred("qa", 200)])
        cache.store(key, SAT, {"qa": 1})
        cache.store(T.query_key([pred("qb", 200)]), SAT, {"qb": 2})
        candidates = [model for model, _memo in cache.recent_models()]
        assert candidates[0] == {}          # the all-zero assignment
        assert candidates[1] == {"qb": 2}   # newest stored model
        assert candidates[2] == {"qa": 1}
        # Bounded by model_probe (+ the implicit zero model).
        cache.store(T.query_key([pred("qc", 200)]), SAT, {"qc": 3})
        assert len(list(cache.recent_models())) == 3

    def test_model_memo_persists_across_replays(self):
        cache = QueryCache()
        cond = pred("qa", 200)
        cache.store(T.query_key([cond]), SAT, {"qa": 7})
        (_, zero_memo), (model, memo) = list(cache.recent_models())
        assert T.all_true([cond], model, memo)
        assert memo[cond._id] == 1   # memoized under the model's cache
        # The same memo object is served again (persistent).
        again = [m for _, m in cache.recent_models()][1]
        assert again is memo

    def test_clear_resets_everything(self):
        cache = QueryCache()
        cache.store(T.query_key([pred("qa", 5)]), SAT, {"qa": 1})
        cache.store(T.query_key([pred("qb", 0, width=8),
                                 T.not_(pred("qb", 0))]), UNSAT)
        cache.clear()
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["unsat_sets"] == 0
        assert stats["models"] == 0


class TestSolverQueryCacheLayer:
    def test_exact_repeat_replays_verdict_and_model(self):
        solver = Solver()
        cond = pred("qa", 5)
        assert solver.check(extra=[cond]) == SAT
        first_model = solver.model()
        misses = solver.stats.cache_misses
        assert solver.check(extra=[cond]) == SAT
        assert solver.stats.cache_hit_sat == 1
        assert solver.stats.cache_misses == misses
        assert solver.model() == first_model

    def test_superset_of_unsat_answers_without_solving(self):
        solver = Solver(use_intervals=False)
        x = T.var("qa", 8)
        contradiction = [T.ult(x, T.bv(5, 8)), T.ult(T.bv(250, 8), x)]
        assert solver.check(extra=contradiction) == UNSAT
        sat_calls = solver.stats.sat_calls
        extended = contradiction + [pred("qb", 9)]
        assert solver.check(extra=extended) == UNSAT
        assert solver.stats.cache_subsumed_unsat == 1
        assert solver.stats.sat_calls == sat_calls
        # The subsumed key was promoted: repeating it is an exact hit.
        assert solver.check(extra=extended) == UNSAT
        assert solver.stats.cache_hit_unsat == 1

    def test_model_reuse_proves_superset_sat(self):
        solver = Solver()
        x = T.var("qa", 8)
        assert solver.check(extra=[T.eq(x, T.bv(99, 8))]) == SAT
        sat_calls = solver.stats.sat_calls
        # The cached model {qa: 99} satisfies the weaker superset query.
        assert solver.check(extra=[T.eq(x, T.bv(99, 8)),
                                   T.ult(T.bv(50, 8), x)]) == SAT
        assert solver.stats.cache_model_reuse >= 1
        assert solver.stats.sat_calls == sat_calls

    def test_disabled_cache_has_no_cache_traffic(self):
        solver = Solver(use_query_cache=False)
        cond = pred("qa", 5)
        assert solver.check(extra=[cond]) == SAT
        assert solver.check(extra=[cond]) == SAT
        stats = solver.stats
        assert solver.query_cache is None
        assert stats.cache_hit_sat == stats.cache_misses == 0
        assert stats.cache_model_reuse == stats.cache_subsumed_unsat == 0

    def test_push_pop_keeps_cache_keys_scoped(self):
        solver = Solver()
        x = T.var("qa", 8)
        solver.add(T.ult(x, T.bv(5, 8)))
        assert solver.check() == SAT
        solver.push()
        solver.add(T.ult(T.bv(250, 8), x))
        assert solver.check() == UNSAT
        solver.pop()
        assert solver.check() == SAT  # exact hit on the outer frame key
        assert solver.stats.cache_hit_sat == 1


class TestModelCacheLRURegression:
    """Satellite fix: Solver._model_cache is a bounded OrderedDict.

    The old implementation kept a list and evicted with ``pop(0)`` —
    FIFO order and an O(n) shift per eviction.  These tests pin the new
    contract: the bound holds exactly, eviction is least-recently-*used*
    (a re-found model survives), and re-remembering refreshes recency.
    """

    @staticmethod
    def _solver():
        # Isolate the model-cache layer from the query-cache layer.
        return Solver(use_intervals=False, use_query_cache=False,
                      model_cache_size=2)

    def test_bound_is_exact(self):
        solver = self._solver()
        for value in (3, 7, 11, 13, 17):
            assert solver.check(
                extra=[T.eq(T.var("qa", 8), T.bv(value, 8))]) == SAT
        assert len(solver._model_cache) == 2

    def test_eviction_is_lru_not_fifo(self):
        solver = self._solver()
        x = T.var("qa", 8)
        assert solver.check(extra=[T.eq(x, T.bv(3, 8))]) == SAT   # A
        assert solver.check(extra=[T.eq(x, T.bv(7, 8))]) == SAT   # B
        # Re-use A (model replay refreshes its recency via _remember).
        sat_calls = solver.stats.sat_calls
        assert solver.check(extra=[T.eq(x, T.bv(3, 8))]) == SAT
        assert solver.stats.sat_calls == sat_calls  # served from cache
        # Inserting C must now evict B (LRU), not A (FIFO head).
        assert solver.check(extra=[T.eq(x, T.bv(11, 8))]) == SAT  # C
        cached_values = [dict(model)["qa"]
                         for model in solver._model_cache.values()]
        assert 3 in cached_values, "LRU evicted the recently-used model"
        assert 7 not in cached_values, "expected the stale model evicted"

    def test_remember_is_idempotent(self):
        solver = self._solver()
        solver._remember({"qa": 1})
        solver._remember({"qa": 1})
        assert len(solver._model_cache) == 1
