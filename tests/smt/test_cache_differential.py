"""Differential harness: cached solver vs cache-free twin.

The ISSUE-3 centerpiece correctness artifact.  Every stream of
assert / push / pop / check operations is replayed in lockstep against

* a **cached** solver — every layer on (query cache with exact hits,
  unsat subsumption and model reuse, plus the model cache and interval
  pre-filter), and
* a **reference** solver — query cache *and* model cache off, so every
  check reaches the interval/bit-blast core,

and on every single check the two verdicts must be identical, and any
SAT answer's model must concretely satisfy every asserted conjunct
(``terms.all_true``).  Streams are deterministic per seed (plain
``random.Random``), so a failure reproduces from its printed seed.

The generator is biased toward the patterns symbolic execution
produces — shared path-condition prefixes (push/pop), superset
extension (assert-then-recheck), and verbatim repeats — because those
are exactly the shapes the cache layers answer.  A meta-assertion at
the bottom verifies the harness is not vacuous: across the run, every
cache layer must actually have fired.
"""

import random

import pytest

from repro.smt import SAT, UNSAT, Solver
from repro.smt import terms as T

WIDTH = 8
VARS = ["da", "db", "dc", "dd"]


def _rand_atom(rng: random.Random) -> T.Term:
    """One width-8 term: variable, constant, or a small combination."""
    roll = rng.random()
    if roll < 0.4:
        return T.var(rng.choice(VARS), WIDTH)
    if roll < 0.6:
        return T.bv(rng.randrange(256), WIDTH)
    op = rng.choice((T.add, T.sub, T.xor, T.and_, T.or_))
    return op(T.var(rng.choice(VARS), WIDTH),
              T.bv(rng.randrange(256), WIDTH))


def _rand_pred(rng: random.Random) -> T.Term:
    """One boolean conjunct shaped like a branch condition."""
    pred = rng.choice((T.eq, T.ult, T.ule, T.slt, T.sle))
    cond = pred(_rand_atom(rng), _rand_atom(rng))
    if rng.random() < 0.3:
        cond = T.not_(cond)
    return cond


class _Twins:
    """A cached solver and its cache-free reference, driven in lockstep."""

    def __init__(self):
        self.cached = Solver()  # all layers on (the engine default)
        self.reference = Solver(use_query_cache=False, use_model_cache=False)
        self.checks = 0

    def add(self, cond: T.Term) -> None:
        self.cached.add(cond)
        self.reference.add(cond)

    def push(self) -> None:
        self.cached.push()
        self.reference.push()

    def pop(self) -> None:
        self.cached.pop()
        self.reference.pop()

    def depth(self) -> int:
        return len(self.cached._frames)

    def check(self, seed: int, extra=()) -> str:
        extra = list(extra)
        got = self.cached.check(extra=extra)
        want = self.reference.check(extra=extra)
        self.checks += 1
        assert got == want, (
            "verdict divergence (seed %d, check %d): cached=%s reference=%s"
            % (seed, self.checks, got, want))
        conds = self.cached.assertions() + extra
        if got == SAT:
            model = self.cached.model()
            assert T.all_true(conds, model), (
                "cached solver returned an invalid model (seed %d): %r"
                % (seed, model))
            assert T.all_true(conds, self.reference.model()), (
                "reference solver returned an invalid model (seed %d)" % seed)
        return got


def _drive_stream(seed: int, steps: int) -> _Twins:
    """Replay one randomized stream; returns the twins for inspection."""
    rng = random.Random(seed)
    twins = _Twins()
    last_extra = []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.40:
            twins.add(_rand_pred(rng))
        elif roll < 0.52:
            twins.push()
        elif roll < 0.64:
            if twins.depth() > 1:
                twins.pop()
            else:
                twins.add(_rand_pred(rng))
        elif roll < 0.88:
            last_extra = [_rand_pred(rng) for _ in range(rng.randrange(3))]
            twins.check(seed, extra=last_extra)
        else:
            # Verbatim repeat of the previous query — the exact-hit path
            # (a finished path's input query repeats the last
            # feasibility check in the real engine).
            twins.check(seed, extra=last_extra)
    twins.check(seed, extra=last_extra)
    return twins


class TestDifferentialStreams:
    """500+ randomized streams, zero divergences allowed."""

    # Class-level tallies so the meta-assertions can prove the harness
    # exercised every cache layer at least once across the whole run.
    totals = {"hits": 0, "model_reuse": 0, "subsumed": 0, "misses": 0}

    @classmethod
    def _tally(cls, twins: _Twins) -> None:
        stats = twins.cached.stats
        cls.totals["hits"] += stats.cache_hit_sat + stats.cache_hit_unsat
        cls.totals["model_reuse"] += stats.cache_model_reuse
        cls.totals["subsumed"] += stats.cache_subsumed_unsat
        cls.totals["misses"] += stats.cache_misses

    @pytest.mark.parametrize("block", range(10))
    def test_streams_agree(self, block):
        """10 blocks x 35 streams x ~14 ops = 350 streams."""
        for offset in range(35):
            twins = _drive_stream(seed=block * 1000 + offset, steps=14)
            self._tally(twins)

    @pytest.mark.parametrize("block", range(5))
    def test_long_streams_agree(self, block):
        """5 blocks x 30 longer streams (deeper push/pop nesting)."""
        for offset in range(30):
            twins = _drive_stream(seed=77000 + block * 1000 + offset,
                                  steps=26)
            self._tally(twins)

    def test_replayed_streams_hit_exact_cache(self):
        """Replaying one stream's queries verbatim on a shared solver
        pair must only add exact hits — and still agree everywhere."""
        replay_hits = 0
        for seed in range(500, 520):
            rng = random.Random(seed)
            twins = _Twins()
            queries = []
            for _ in range(8):
                twins.add(_rand_pred(rng))
                extra = [_rand_pred(rng) for _ in range(rng.randrange(2))]
                queries.append(extra)
                twins.check(seed, extra=extra)
            before = (twins.cached.stats.cache_hit_sat
                      + twins.cached.stats.cache_hit_unsat)
            for extra in queries:
                twins.check(seed, extra=extra)
            # The final query of the loop repeats verbatim; earlier ones
            # were prefixes, which the reference must still agree on.
            hits = (twins.cached.stats.cache_hit_sat
                    + twins.cached.stats.cache_hit_unsat)
            replay_hits += hits - before
            self._tally(twins)
        # Aggregate (a stream whose conjunction simplifies to literal
        # false legitimately bypasses the cache, so per-seed hit counts
        # can be zero): replays must hit the exact cache overall.
        assert replay_hits >= 20, replay_hits

    def test_zz_meta_every_layer_fired(self):
        """Run last (zz): the harness must have exercised every layer."""
        totals = type(self).totals
        assert totals["hits"] > 0, totals
        assert totals["model_reuse"] > 0, totals
        assert totals["subsumed"] > 0, totals
        assert totals["misses"] > 0, totals


class TestSubsumptionDirected:
    """Directed (non-random) interleavings that pin each layer."""

    def test_superset_of_unsat_is_subsumed(self):
        twins = _Twins()
        x = T.var("da", WIDTH)
        twins.add(T.ult(x, T.bv(5, WIDTH)))
        twins.add(T.ult(T.bv(250, WIDTH), x))
        assert twins.check(0) == UNSAT
        # Any extension of an unsat conjunction is unsat without solving.
        twins.add(T.eq(T.var("db", WIDTH), T.bv(7, WIDTH)))
        assert twins.check(0) == UNSAT
        assert twins.cached.stats.cache_subsumed_unsat >= 1

    def test_push_pop_restores_sat(self):
        twins = _Twins()
        x = T.var("da", WIDTH)
        twins.add(T.ult(x, T.bv(5, WIDTH)))
        assert twins.check(0) == SAT
        twins.push()
        twins.add(T.ult(T.bv(250, WIDTH), x))
        assert twins.check(0) == UNSAT
        twins.pop()
        # Popping must drop the unsat conjunct for the cache too: the
        # canonical key of the restored frame is the original SAT key.
        assert twins.check(0) == SAT

    def test_conjunct_order_cannot_split_entries(self):
        a = T.ult(T.var("da", WIDTH), T.bv(9, WIDTH))
        b = T.eq(T.var("db", WIDTH), T.bv(3, WIDTH))
        twins = _Twins()
        assert twins.check(0, extra=[a, b]) == SAT
        misses_before = twins.cached.stats.cache_misses
        assert twins.check(0, extra=[b, a]) == SAT
        assert twins.check(0, extra=[a, b, a]) == SAT
        assert twins.cached.stats.cache_misses == misses_before
