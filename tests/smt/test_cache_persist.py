"""QueryCache persistence: save_state/load_state round trip.

Cache keys are frozensets of structural term digests — process-portable
by construction — so a persisted cache must warm a fresh solver to the
same verdicts without re-solving.
"""

import json

import pytest

from repro.smt import SAT, UNSAT, Solver
from repro.smt import terms as T
from repro.smt.cache import QueryCache


def queries():
    x = T.var("px", 8)
    sat_q = [T.eq(x, T.bv(7, 8))]
    unsat_q = [T.eq(x, T.bv(1, 8)), T.eq(x, T.bv(2, 8))]
    return sat_q, unsat_q


def solved_solver():
    solver = Solver()
    sat_q, unsat_q = queries()
    assert solver.check(sat_q) == SAT
    assert solver.check(unsat_q) == UNSAT
    return solver, sat_q, unsat_q


class TestRoundTrip:
    def test_snapshot_is_json_serializable(self):
        solver, _, _ = solved_solver()
        payload = solver.query_cache.save_state()
        clone = json.loads(json.dumps(payload))
        assert clone["version"] == 1
        assert len(clone["entries"]) == 2

    def test_loaded_cache_answers_without_solving(self):
        solver, sat_q, unsat_q = solved_solver()
        payload = json.loads(json.dumps(
            solver.query_cache.save_state()))

        fresh = Solver()
        loaded = fresh.query_cache.load_state(payload)
        assert loaded == 2
        assert fresh.check(sat_q) == SAT
        assert fresh.check(unsat_q) == UNSAT
        assert fresh.stats.cache_misses == 0
        assert fresh.stats.sat_calls == 0

    def test_sat_entries_keep_their_model(self):
        solver, sat_q, _ = solved_solver()
        payload = solver.query_cache.save_state()
        fresh = QueryCache()
        fresh.load_state(payload)
        entry = fresh.lookup(T.query_key(sat_q))
        assert entry is not None and entry.verdict == SAT
        assert entry.model is not None

    def test_unsat_subsumption_survives(self):
        solver, _, unsat_q = solved_solver()
        fresh = QueryCache()
        fresh.load_state(solver.query_cache.save_state())
        superset = unsat_q + [T.eq(T.var("px", 8), T.bv(3, 8))]
        assert fresh.subsumes_unsat(T.query_key(superset))


class TestTolerance:
    @pytest.mark.parametrize("payload", [
        None, 17, "garbage", {}, {"entries": "nope"},
        {"version": 1, "entries": [{"bad": True}]},
        {"version": 1, "entries": [{"key": ["zz-not-hex"],
                                    "verdict": "sat"}]},
        {"version": 1, "entries": [{"key": ["aa"],
                                    "verdict": "maybe"}]},
    ])
    def test_corrupt_payload_degrades_to_cold(self, payload):
        cache = QueryCache()
        assert cache.load_state(payload) == 0
        assert len(cache) == 0

    def test_partial_payload_loads_good_entries(self):
        solver, _, _ = solved_solver()
        payload = solver.query_cache.save_state()
        payload["entries"].append({"key": ["not-hex!"],
                                   "verdict": "sat"})
        payload["unsat_sets"].append(["also-bad"])
        payload["models"].append("not-a-dict")
        fresh = QueryCache()
        assert fresh.load_state(payload) == 2
