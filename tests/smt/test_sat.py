"""Unit tests for the CDCL SAT core."""

import itertools
import random

import pytest

from repro.smt.sat import SAT, UNSAT, SatSolver, luby


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve() == SAT

    def test_unit_clause(self):
        s = SatSolver()
        s.add_clause([1])
        assert s.solve() == SAT
        assert s.model()[1] == 1

    def test_contradicting_units(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve() == UNSAT

    def test_empty_clause_is_unsat(self):
        s = SatSolver()
        s.add_clause([])
        assert s.solve() == UNSAT

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            SatSolver().add_clause([0])

    def test_tautology_ignored(self):
        s = SatSolver()
        s.add_clause([1, -1])
        assert s.solve() == SAT

    def test_duplicate_literals_deduped(self):
        s = SatSolver()
        s.add_clause([1, 1, 1])
        assert s.solve() == SAT
        assert s.model()[1] == 1

    def test_simple_implication_chain(self):
        s = SatSolver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve() == SAT
        model = s.model()
        assert model[1] == model[2] == model[3] == 1

    def test_model_satisfies_clauses(self):
        s = SatSolver()
        clauses = [[1, 2], [-1, 3], [-2, -3], [1, -3]]
        for c in clauses:
            s.add_clause(c)
        assert s.solve() == SAT
        model = s.model()
        for c in clauses:
            assert any((lit > 0) == (model[abs(lit)] == 1) for lit in c)


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """n+1 pigeons into n holes: classic small UNSAT family."""
        pigeons = holes + 1
        s = SatSolver()

        def v(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            s.add_clause([v(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v(p1, h), -v(p2, h)])
        return s

    def test_php3_unsat(self):
        assert self._pigeonhole(3).solve() == UNSAT

    def test_php4_unsat(self):
        assert self._pigeonhole(4).solve() == UNSAT

    def test_learning_happens(self):
        s = self._pigeonhole(4)
        s.solve()
        assert s.stats["conflicts"] > 0


class TestAssumptions:
    def test_sat_under_assumptions(self):
        s = SatSolver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1]) == SAT
        assert s.model()[2] == 1

    def test_unsat_under_assumptions_then_sat(self):
        s = SatSolver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1, -2]) == UNSAT
        assert s.solve(assumptions=[-1]) == SAT
        assert s.solve() == SAT

    def test_assumption_conflicts_with_unit(self):
        s = SatSolver()
        s.add_clause([5])
        assert s.solve(assumptions=[-5]) == UNSAT
        assert s.solve(assumptions=[5]) == SAT

    def test_incremental_reuse(self):
        s = SatSolver()
        # (a | b) & (!a | c)
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        for _ in range(3):
            assert s.solve(assumptions=[1]) == SAT
            assert s.model()[3] == 1
            assert s.solve(assumptions=[-3, 1]) == UNSAT


class TestRandom3Sat:
    def _brute_force(self, num_vars, clauses):
        for bits in itertools.product([0, 1], repeat=num_vars):
            if all(any((lit > 0) == (bits[abs(lit) - 1] == 1) for lit in c)
                   for c in clauses):
                return True
        return False

    def test_agrees_with_brute_force(self):
        rng = random.Random(1234)
        for round_no in range(40):
            num_vars = rng.randint(3, 8)
            num_clauses = rng.randint(2, 30)
            clauses = []
            for _ in range(num_clauses):
                size = rng.randint(1, 3)
                clause = [rng.choice([-1, 1]) * rng.randint(1, num_vars)
                          for _ in range(size)]
                clauses.append(clause)
            s = SatSolver()
            for c in clauses:
                s.add_clause(c)
            got = s.solve()
            expected = SAT if self._brute_force(num_vars, clauses) else UNSAT
            assert got == expected, (round_no, clauses)
            if got == SAT:
                model = s.model()
                for c in clauses:
                    assert any((lit > 0) == (model[abs(lit)] == 1)
                               for lit in c), (clauses, model)
