"""Width-edge tests of the bit-blaster: 1-bit through 64-bit operations.

Strategy: for a spread of widths and operators, assert that the solver's
model of ``out == op(a, b)`` (with partially pinned operands) agrees with
the term evaluator — a semantics cross-check at widths the engine uses
(1-bit flags, 8-bit bytes, 16/32-bit words, 64-bit multiply-high).
"""

import pytest

from repro.smt import SAT, UNSAT, Solver
from repro.smt import terms as T

WIDTHS = [1, 3, 8, 16, 32, 64]


def fresh(name, width):
    return T.var("wb_%s_%d" % (name, width), width)


class TestWidthSweep:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_add_inverse(self, width):
        solver = Solver()
        a = fresh("a", width)
        b = fresh("b", width)
        solver.add(T.eq(T.add(a, b), T.bv(0, width)))
        solver.add(T.ne(a, T.bv(0, width)))
        assert solver.check() == SAT
        model = solver.model()
        total = (model.get(a.name, 0) + model.get(b.name, 0))
        assert total & T.mask(width) == 0

    @pytest.mark.parametrize("width", WIDTHS)
    def test_mul_by_two_is_shift(self, width):
        solver = Solver()
        a = fresh("m", width)
        lhs = T.mul(a, T.bv(2 % (1 << width), width))
        rhs = T.shl(a, T.bv(1 % (1 << width), width))
        if width == 1:
            # 2 mod 2 == 0 and shl by 1 zeroes a 1-bit value: always equal.
            solver.add(T.ne(lhs, T.bv(0, 1)))
            assert solver.check() == UNSAT
            return
        solver.add(T.ne(lhs, rhs))
        assert solver.check() == UNSAT

    @pytest.mark.parametrize("width", [3, 8])
    def test_udiv_roundtrip(self, width):
        solver = Solver()
        a = fresh("d", width)
        b = fresh("e", width)
        quotient = T.udiv(a, b)
        remainder = T.urem(a, b)
        solver.add(T.ne(b, T.bv(0, width)))
        reconstructed = T.add(T.mul(quotient, b), remainder)
        solver.add(T.ne(reconstructed, a))
        assert solver.check() == UNSAT

    # Divider UNSAT proofs grow steeply with width on the pure-Python
    # CDCL core; 8/12 bits already exercise the full signed circuitry.
    @pytest.mark.parametrize("width", [8])
    def test_sdiv_sign_symmetry(self, width):
        # (-a) /s b == -(a /s b) for b != 0 when a != INT_MIN.
        solver = Solver()
        a = fresh("s", width)
        b = fresh("t", width)
        int_min = T.bv(1 << (width - 1), width)
        solver.add(T.ne(b, T.bv(0, width)))
        solver.add(T.ne(a, int_min))
        lhs = T.sdiv(T.neg(a), b)
        rhs = T.neg(T.sdiv(a, b))
        solver.add(T.ne(lhs, rhs))
        assert solver.check() == UNSAT

    def test_one_bit_boolean_algebra(self):
        solver = Solver()
        a = fresh("p", 1)
        b = fresh("q", 1)
        # De Morgan at width 1.
        lhs = T.not_(T.and_(a, b))
        rhs = T.or_(T.not_(a), T.not_(b))
        solver.add(T.ne(lhs, rhs))
        assert solver.check() == UNSAT

    def test_64bit_mulh_matches_python(self):
        solver = Solver()
        a = fresh("mh", 32)
        b = fresh("mi", 32)
        high = T.extract(T.mul(T.zext(a, 32), T.zext(b, 32)), 63, 32)
        solver.add(T.eq(a, T.bv(0xdeadbeef, 32)))
        solver.add(T.eq(b, T.bv(0xcafebabe, 32)))
        solver.add(T.ne(high, T.bv((0xdeadbeef * 0xcafebabe) >> 32, 32)))
        assert solver.check() == UNSAT

    @pytest.mark.parametrize("width", [8, 16, 33])
    def test_odd_and_even_widths_concat(self, width):
        solver = Solver()
        a = fresh("c", width)
        roundtrip = T.concat(T.extract(a, width - 1, width // 2),
                             T.extract(a, width // 2 - 1, 0))
        solver.add(T.ne(roundtrip, a))
        assert solver.check() == UNSAT

    @pytest.mark.parametrize("width", [8, 16])
    def test_rotl_rotr_inverse(self, width):
        solver = Solver()
        a = fresh("r", width)
        amount = fresh("ra", width)
        roundtrip = T.rotr(T.rotl(a, amount), amount)
        solver.add(T.ne(roundtrip, a))
        assert solver.check() == UNSAT

    def test_ashr_is_floor_division_by_power_of_two(self):
        width = 16
        solver = Solver()
        a = fresh("fa", width)
        # For non-negative a: a >>s 3 == a / 8.
        solver.add(T.sge(a, T.bv(0, width)))
        solver.add(T.ne(T.ashr(a, T.bv(3, width)),
                        T.udiv(a, T.bv(8, width))))
        assert solver.check() == UNSAT
