"""End-to-end tests of the SMT solver (bit-blasting + CDCL + filters)."""

import pytest

from repro.smt import SAT, UNSAT, Solver
from repro.smt import terms as T


def bv8(value):
    return T.bv(value, 8)


class TestCheckBasics:
    def test_empty_is_sat(self):
        assert Solver().check() == SAT

    def test_true_assertion(self):
        s = Solver()
        s.add(T.TRUE)
        assert s.check() == SAT

    def test_false_assertion(self):
        s = Solver()
        s.add(T.FALSE)
        assert s.check() == UNSAT

    def test_non_boolean_assertion_rejected(self):
        with pytest.raises(T.WidthError):
            Solver().add(T.bv(1, 8))

    def test_model_before_check_rejected(self):
        with pytest.raises(T.SmtError):
            Solver().model()

    def test_simple_equality(self):
        s = Solver()
        x = T.var("sv_a", 8)
        s.add(T.eq(x, bv8(42)))
        assert s.check() == SAT
        assert s.model()["sv_a"] == 42

    def test_extra_constraints_not_persisted(self):
        s = Solver()
        x = T.var("sv_b", 8)
        s.add(T.ult(x, bv8(10)))
        assert s.check(extra=[T.eq(x, bv8(200))]) == UNSAT
        assert s.check() == SAT


class TestArithmeticSemantics:
    """Each operator: the solver's model must agree with Python semantics."""

    def _solve_one(self, builder, result_name="out"):
        s = Solver()
        a, b = T.var("ar_a", 8), T.var("ar_b", 8)
        out = T.var(result_name + "_ar", 8)
        s.add(T.eq(out, builder(a, b)))
        s.add(T.ne(b, bv8(0)))
        s.add(T.ugt(a, bv8(1)))
        assert s.check() == SAT
        m = s.model()
        got = T.evaluate(builder(a, b), m)
        assert m.get(result_name + "_ar", 0) == got
        return m

    def test_add(self):
        self._solve_one(T.add)

    def test_sub(self):
        self._solve_one(T.sub)

    def test_mul(self):
        self._solve_one(T.mul)

    def test_udiv(self):
        self._solve_one(T.udiv)

    def test_urem(self):
        self._solve_one(T.urem)

    def test_sdiv(self):
        self._solve_one(T.sdiv)

    def test_srem(self):
        self._solve_one(T.srem)

    def test_udiv_exact(self):
        s = Solver()
        a, b = T.var("dx_a", 8), T.var("dx_b", 8)
        s.add(T.eq(T.udiv(a, b), bv8(7)))
        s.add(T.ne(b, bv8(0)))
        assert s.check() == SAT
        m = s.model()
        assert m["dx_a"] // m["dx_b"] == 7

    def test_udiv_by_zero_smtlib(self):
        s = Solver()
        a = T.var("dz_a", 8)
        s.add(T.eq(T.udiv(a, bv8(0)), bv8(0xff)))
        assert s.check() == SAT  # holds for every a

    def test_urem_by_zero_smtlib(self):
        s = Solver()
        a = T.var("dz_b", 8)
        s.add(T.ne(T.urem(a, bv8(0)), a))
        assert s.check() == UNSAT  # urem by 0 is always the dividend

    def test_mul_truncates(self):
        s = Solver()
        a = T.var("mt_a", 8)
        s.add(T.eq(a, bv8(16)))
        s.add(T.ne(T.mul(a, a), bv8(0)))
        assert s.check() == UNSAT


class TestShifts:
    def test_shl_symbolic_amount(self):
        s = Solver()
        amt = T.var("sh_amt", 8)
        s.add(T.eq(T.shl(bv8(1), amt), bv8(32)))
        assert s.check() == SAT
        assert s.model()["sh_amt"] == 5

    def test_overshift_zero(self):
        s = Solver()
        amt = T.var("sh_over", 8)
        s.add(T.uge(amt, bv8(8)))
        s.add(T.ne(T.shl(bv8(0xff), amt), bv8(0)))
        assert s.check() == UNSAT

    def test_ashr_sign_fill(self):
        s = Solver()
        x = T.var("sh_x", 8)
        s.add(T.uge(x, bv8(0x80)))          # negative
        s.add(T.ne(T.ashr(x, bv8(7)), bv8(0xff)))
        assert s.check() == UNSAT

    def test_lshr_inverse_of_shl(self):
        s = Solver()
        x = T.var("sh_y", 8)
        s.add(T.ult(x, bv8(16)))
        s.add(T.ne(T.lshr(T.shl(x, bv8(4)), bv8(4)), x))
        assert s.check() == UNSAT


class TestStructureOps:
    def test_concat_extract_roundtrip(self):
        s = Solver()
        a, b = T.var("ce_a", 8), T.var("ce_b", 8)
        cat = T.concat(a, b)
        s.add(T.ne(T.extract(cat, 15, 8), a))
        assert s.check() == UNSAT

    def test_sext_preserves_signed_order(self):
        s = Solver()
        x = T.var("se_x", 8)
        s.add(T.slt(x, bv8(0)))
        s.add(T.sge(T.sext(x, 8), T.bv(0, 16)))
        assert s.check() == UNSAT

    def test_ite_selects(self):
        s = Solver()
        c = T.var("it_c", 1)
        out = T.ite(c, bv8(10), bv8(20))
        s.add(T.eq(out, bv8(20)))
        assert s.check() == SAT
        # Models are partial: unmentioned variables default to 0.
        assert s.model().get("it_c", 0) == 0


class TestPushPop:
    def test_push_pop_scopes(self):
        s = Solver()
        x = T.var("pp_x", 8)
        s.add(T.ult(x, bv8(10)))
        s.push()
        s.add(T.ugt(x, bv8(20)))
        assert s.check() == UNSAT
        s.pop()
        assert s.check() == SAT

    def test_pop_outermost_rejected(self):
        with pytest.raises(T.SmtError):
            Solver().pop()

    def test_nested_scopes(self):
        s = Solver()
        x = T.var("pp_y", 8)
        s.push()
        s.add(T.eq(x, bv8(1)))
        s.push()
        s.add(T.eq(x, bv8(2)))
        assert s.check() == UNSAT
        s.pop()
        assert s.check() == SAT
        assert s.model()["pp_y"] == 1
        s.pop()
        assert s.check() == SAT


class TestFilterLayers:
    def test_model_cache_hits(self):
        s = Solver()
        x = T.var("fc_x", 8)
        s.add(T.ult(x, bv8(200)))
        assert s.check() == SAT
        before = s.stats.sat_calls
        # Same question again: answered from the model cache.
        assert s.check() == SAT
        assert s.stats.sat_calls == before
        assert s.stats.cache_sat >= 1

    def test_interval_filter_avoids_sat(self):
        s = Solver(use_model_cache=False)
        x = T.var("fi_x", 8)
        s.add(T.ult(x, bv8(5)))
        s.add(T.ugt(x, bv8(250)))
        assert s.check() == UNSAT
        assert s.stats.interval_unsat == 1
        assert s.stats.sat_calls == 0

    def test_filters_disabled_still_correct(self):
        s = Solver(use_intervals=False, use_model_cache=False)
        x = T.var("fd_x", 8)
        s.add(T.ult(x, bv8(5)))
        s.add(T.ugt(x, bv8(250)))
        assert s.check() == UNSAT
        s2 = Solver(use_intervals=False, use_model_cache=False)
        s2.add(T.ult(x, bv8(5)))
        assert s2.check() == SAT
        assert s2.stats.sat_calls == 1

    def test_stats_dict(self):
        s = Solver()
        s.check()
        stats = s.stats.as_dict()
        assert stats["checks"] == 1


class TestWiderWidths:
    def test_32bit_arithmetic(self):
        s = Solver()
        x = T.var("w32_x", 32)
        s.add(T.eq(T.mul(x, T.bv(3, 32)), T.bv(0x99, 32)))
        assert s.check() == SAT
        assert (s.model()["w32_x"] * 3) & 0xffffffff == 0x99

    def test_16bit_overflow_detection(self):
        s = Solver()
        x = T.var("w16_x", 16)
        wide = T.mul(T.zext(x, 16), T.zext(x, 16))
        s.add(T.ugt(wide, T.bv(0xffff, 32)))   # x*x overflows 16 bits
        s.add(T.ult(x, T.bv(0x200, 16)))
        assert s.check() == SAT
        m = s.model()["w16_x"]
        assert m * m > 0xffff and m < 0x200
