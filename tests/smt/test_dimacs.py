"""Tests for the DIMACS CNF export (external-solver interop aid)."""

import re

from repro.smt import Solver
from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster


class TestDimacsExport:
    def test_header_and_clause_shape(self):
        blaster = BitBlaster()
        a = T.var("dim_a", 4)
        lit = blaster.literal_for(T.eq(a, T.bv(5, 4)))
        text = blaster.to_dimacs(assumptions=[lit])
        lines = text.strip().splitlines()
        assert lines[0].startswith("c ")
        header = re.match(r"p cnf (\d+) (\d+)", lines[1])
        assert header
        num_vars, num_clauses = int(header.group(1)), int(header.group(2))
        body = lines[2:]
        assert len(body) == num_clauses
        for line in body:
            literals = [int(tok) for tok in line.split()]
            assert literals[-1] == 0
            for lit_value in literals[:-1]:
                assert lit_value != 0
                assert abs(lit_value) <= num_vars

    def test_export_is_satisfiable_consistent(self):
        """A model from our solver satisfies the exported CNF."""
        solver = Solver(use_model_cache=False, use_intervals=False)
        x = T.var("dim_x", 8)
        cond = T.eq(T.add(x, T.bv(1, 8)), T.bv(0x80, 8))
        solver.add(cond)
        assert solver.check() == "sat"
        # Re-blast into a fresh blaster for the export.
        blaster = BitBlaster()
        lit = blaster.literal_for(cond)
        text = blaster.to_dimacs(assumptions=[lit])
        clauses = [[int(tok) for tok in line.split()[:-1]]
                   for line in text.strip().splitlines()[2:]]
        # Check the exported instance with our own SAT core.
        from repro.smt.sat import SAT, SatSolver
        checker = SatSolver()
        for clause in clauses:
            checker.add_clause(clause)
        assert checker.solve() == SAT
        model = checker.model()
        value = blaster.extract_model(model)["dim_x"]
        assert (value + 1) & 0xff == 0x80
