"""Unit tests for the hash-consed term layer."""

import pytest

from repro.smt import terms as T


class TestConstruction:
    def test_const_masks_value(self):
        assert T.bv(0x1ff, 8).value == 0xff

    def test_const_width(self):
        assert T.bv(1, 32).width == 32

    def test_zero_width_rejected(self):
        with pytest.raises(T.WidthError):
            T.bv(0, 0)

    def test_var_interned_by_name(self):
        assert T.var("v_intern", 8) is T.var("v_intern", 8)

    def test_var_width_conflict_rejected(self):
        T.var("v_conflict", 8)
        with pytest.raises(T.WidthError):
            T.var("v_conflict", 16)

    def test_width_mismatch_rejected(self):
        with pytest.raises(T.WidthError):
            T.add(T.bv(0, 8), T.bv(0, 16))

    def test_hash_consing_returns_same_object(self):
        x = T.var("hc_x", 8)
        assert T.add(x, T.bv(1, 8)) is T.add(x, T.bv(1, 8))

    def test_commutative_canonicalization(self):
        x, y = T.var("cc_x", 8), T.var("cc_y", 8)
        assert T.add(x, y) is T.add(y, x)
        assert T.mul(x, y) is T.mul(y, x)
        assert T.and_(x, y) is T.and_(y, x)


class TestConstantFolding:
    def test_add(self):
        assert T.add(T.bv(250, 8), T.bv(10, 8)).value == 4

    def test_sub_wraps(self):
        assert T.sub(T.bv(0, 8), T.bv(1, 8)).value == 0xff

    def test_mul(self):
        assert T.mul(T.bv(16, 8), T.bv(16, 8)).value == 0

    def test_udiv_by_zero_is_all_ones(self):
        assert T.udiv(T.bv(7, 8), T.bv(0, 8)).value == 0xff

    def test_urem_by_zero_is_dividend(self):
        assert T.urem(T.bv(7, 8), T.bv(0, 8)).value == 7

    def test_sdiv_truncates_toward_zero(self):
        # -7 / 2 == -3
        assert T.sdiv(T.bv(-7, 8), T.bv(2, 8)).value == T.bv(-3, 8).value

    def test_srem_sign_follows_dividend(self):
        # -7 rem 2 == -1
        assert T.srem(T.bv(-7, 8), T.bv(2, 8)).value == T.bv(-1, 8).value

    def test_sdiv_by_zero_negative_dividend(self):
        assert T.sdiv(T.bv(-5, 8), T.bv(0, 8)).value == 1

    def test_sdiv_by_zero_positive_dividend(self):
        assert T.sdiv(T.bv(5, 8), T.bv(0, 8)).value == 0xff

    def test_shift_folding(self):
        assert T.shl(T.bv(1, 8), T.bv(3, 8)).value == 8
        assert T.lshr(T.bv(0x80, 8), T.bv(7, 8)).value == 1
        assert T.ashr(T.bv(0x80, 8), T.bv(7, 8)).value == 0xff

    def test_overshift_is_zero(self):
        assert T.shl(T.bv(1, 8), T.bv(9, 8)).value == 0
        assert T.lshr(T.bv(0xff, 8), T.bv(8, 8)).value == 0

    def test_ashr_overshift_is_sign_fill(self):
        assert T.ashr(T.bv(0x80, 8), T.bv(100, 8)).value == 0xff
        assert T.ashr(T.bv(0x40, 8), T.bv(100, 8)).value == 0


class TestIdentities:
    def test_add_zero(self):
        x = T.var("id_x", 8)
        assert T.add(x, T.bv(0, 8)) is x

    def test_sub_self_is_zero(self):
        x = T.var("id_x", 8)
        assert T.sub(x, x).value == 0

    def test_mul_one(self):
        x = T.var("id_x", 8)
        assert T.mul(x, T.bv(1, 8)) is x

    def test_and_ones(self):
        x = T.var("id_x", 8)
        assert T.and_(x, T.bv(0xff, 8)) is x

    def test_and_zero(self):
        x = T.var("id_x", 8)
        assert T.and_(x, T.bv(0, 8)).value == 0

    def test_xor_self_is_zero(self):
        x = T.var("id_x", 8)
        assert T.xor(x, x).value == 0

    def test_double_not(self):
        x = T.var("id_x", 8)
        assert T.not_(T.not_(x)) is x

    def test_eq_self_is_true(self):
        x = T.var("id_x", 8)
        assert T.is_true(T.eq(x, x))

    def test_ult_self_is_false(self):
        x = T.var("id_x", 8)
        assert T.is_false(T.ult(x, x))

    def test_add_reassociation(self):
        x = T.var("id_x", 8)
        t = T.add(T.add(x, T.bv(1, 8)), T.bv(2, 8))
        assert t is T.add(x, T.bv(3, 8))


class TestStructure:
    def test_concat_widths(self):
        t = T.concat(T.var("st_a", 8), T.var("st_b", 16))
        assert t.width == 24

    def test_concat_const_fold(self):
        assert T.concat(T.bv(0xAB, 8), T.bv(0xCD, 8)).value == 0xABCD

    def test_extract_bounds_checked(self):
        with pytest.raises(T.WidthError):
            T.extract(T.bv(0, 8), 8, 0)

    def test_extract_full_width_is_identity(self):
        x = T.var("st_x", 8)
        assert T.extract(x, 7, 0) is x

    def test_extract_of_extract_composes(self):
        x = T.var("st_y", 32)
        inner = T.extract(x, 23, 8)
        assert T.extract(inner, 7, 0) is T.extract(x, 15, 8)

    def test_extract_through_concat(self):
        a, b = T.var("st_a", 8), T.var("st_b", 16)
        cat = T.concat(a, b)
        assert T.extract(cat, 23, 16) is a
        assert T.extract(cat, 15, 0) is b

    def test_concat_of_adjacent_extracts_folds(self):
        x = T.var("st_y", 32)
        t = T.concat(T.extract(x, 15, 8), T.extract(x, 7, 0))
        assert t is T.extract(x, 15, 0)

    def test_zext_const(self):
        assert T.zext(T.bv(0xff, 8), 8).value == 0xff

    def test_sext_const_negative(self):
        assert T.sext(T.bv(0x80, 8), 8).value == 0xff80

    def test_sext_of_zext_is_zext(self):
        x = T.var("st_x", 8)
        assert T.sext(T.zext(x, 8), 16).op == T.ZEXT

    def test_zero_extension_by_zero_is_identity(self):
        x = T.var("st_x", 8)
        assert T.zext(x, 0) is x
        assert T.sext(x, 0) is x


class TestPredicatesAndIte:
    def test_ite_needs_boolean_condition(self):
        with pytest.raises(T.WidthError):
            T.ite(T.bv(1, 8), T.bv(0, 8), T.bv(1, 8))

    def test_ite_const_condition(self):
        a, b = T.bv(1, 8), T.bv(2, 8)
        assert T.ite(T.TRUE, a, b) is a
        assert T.ite(T.FALSE, a, b) is b

    def test_ite_same_branches(self):
        c = T.var("p_c", 1)
        a = T.var("p_a", 8)
        assert T.ite(c, a, a) is a

    def test_ite_bool_collapse(self):
        c = T.var("p_c", 1)
        assert T.ite(c, T.TRUE, T.FALSE) is c

    def test_signed_comparison_lowering(self):
        # -1 <s 0 but not -1 <u 0
        minus1, zero = T.bv(-1, 8), T.bv(0, 8)
        assert T.is_true(T.slt(minus1, zero))
        assert T.is_false(T.ult(minus1, zero))

    def test_sle_sge(self):
        assert T.is_true(T.sle(T.bv(-5, 8), T.bv(-5, 8)))
        assert T.is_true(T.sge(T.bv(5, 8), T.bv(-5, 8)))

    def test_ne_is_not_eq(self):
        assert T.is_true(T.ne(T.bv(1, 8), T.bv(2, 8)))

    def test_conjoin_disjoin_empty(self):
        assert T.is_true(T.conjoin([]))
        assert T.is_false(T.disjoin([]))

    def test_implies(self):
        assert T.is_true(T.implies(T.FALSE, T.FALSE))
        assert T.is_false(T.implies(T.TRUE, T.FALSE))


class TestEvaluate:
    def test_variable_lookup(self):
        x = T.var("ev_x", 8)
        assert T.evaluate(T.add(x, T.bv(1, 8)), {"ev_x": 41}) == 42

    def test_default_for_missing(self):
        x = T.var("ev_y", 8)
        assert T.evaluate(x, {}) == 0
        assert T.evaluate(x, {}, default=7) == 7

    def test_missing_raises_with_none_default(self):
        x = T.var("ev_z", 8)
        with pytest.raises(T.SmtError):
            T.evaluate(x, {}, default=None)

    def test_deep_term_no_recursion_error(self):
        x = T.var("ev_deep", 8)
        t = x
        for _ in range(5000):
            t = T.add(t, T.bv(1, 8))
        assert T.evaluate(t, {"ev_deep": 0}) == 5000 % 256

    def test_rotl_rotr(self):
        x = T.var("ev_rot", 8)
        env = {"ev_rot": 0b10010110}
        assert T.evaluate(T.rotl(x, T.bv(3, 8)), env) == 0b10110100
        assert T.evaluate(T.rotr(x, T.bv(3, 8)), env) == 0b11010010

    def test_rot_by_zero(self):
        x = T.var("ev_rot", 8)
        assert T.evaluate(T.rotl(x, T.bv(0, 8)), {"ev_rot": 0x5a}) == 0x5a


class TestInspection:
    def test_variables(self):
        x, y = T.var("in_x", 8), T.var("in_y", 8)
        found = T.variables(T.add(x, T.mul(y, y)))
        assert set(found) == {"in_x", "in_y"}

    def test_term_size_shares_dag(self):
        x = T.var("in_x", 8)
        double = T.add(x, x)
        quad = T.add(double, double)
        assert T.term_size(quad) == 3  # x, double, quad

    def test_to_signed(self):
        assert T.to_signed(0xff, 8) == -1
        assert T.to_signed(0x7f, 8) == 127

    def test_render_is_stable(self):
        x = T.var("in_x", 8)
        assert "in_x" in repr(T.add(x, T.bv(1, 8)))


class TestPoolConfiguration:
    def teardown_method(self):
        T.configure(hash_consing=True, simplify=True)

    def test_no_hash_consing_gives_fresh_objects(self):
        T.configure(hash_consing=False, simplify=True)
        x = T.var("pc_x", 8)
        y = T.var("pc_x", 8)
        # vars stay interned by name even without consing
        assert x is y
        a = T.add(x, T.var("pc_y", 8))
        b = T.add(x, T.var("pc_y", 8))
        assert a is not b
        assert a == b  # structural equality still holds

    def test_no_simplify_keeps_structure(self):
        T.configure(hash_consing=True, simplify=False)
        x = T.var("pc_z", 8)
        t = T.add(x, T.bv(0, 8))
        assert t.op == T.ADD

    def test_pool_stats_counts(self):
        pool = T.configure(hash_consing=True, simplify=True)
        x = T.var("pc_s", 8)
        T.add(x, T.bv(1, 8))
        T.add(x, T.bv(1, 8))
        assert pool.stats()["hits"] >= 1
