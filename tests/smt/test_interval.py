"""Unit tests for the interval pre-filter (soundness is the key property)."""

from repro.smt import terms as T
from repro.smt.interval import (
    definitely_false,
    definitely_true,
    interval,
    refute_conjunction,
)


def bv8(value):
    return T.bv(value, 8)


class TestBasicIntervals:
    def test_const(self):
        assert interval(bv8(42)) == (42, 42)

    def test_var_is_full_range(self):
        assert interval(T.var("iv_x", 8)) == (0, 255)

    def test_add_without_overflow(self):
        t = T.make_no_simplify_add if False else None
        # add of constants folds, so build with vars restricted via ite
        x = T.var("iv_x", 8)
        t = T.add(T.ite(T.var("iv_c", 1), bv8(1), bv8(2)), bv8(10))
        assert interval(t) == (11, 12)

    def test_add_with_possible_overflow_widens(self):
        x = T.var("iv_x", 8)
        assert interval(T.add(x, bv8(1))) == (0, 255)

    def test_ite_hull(self):
        c = T.var("iv_c", 1)
        t = T.ite(c, bv8(5), bv8(9))
        assert interval(t) == (5, 9)

    def test_zext_preserves(self):
        t = T.zext(T.ite(T.var("iv_c", 1), bv8(3), bv8(7)), 8)
        assert interval(t) == (3, 7)

    def test_and_bounded_by_min(self):
        x = T.var("iv_x", 8)
        assert interval(T.and_(x, bv8(0x0f)))[1] <= 0x0f

    def test_comparison_decided(self):
        sel = T.ite(T.var("iv_c", 1), bv8(1), bv8(2))
        assert interval(T.ult(sel, bv8(10))) == (1, 1)
        assert interval(T.ult(sel, bv8(1))) == (0, 0)


class TestDefiniteness:
    def test_definitely_false(self):
        sel = T.ite(T.var("iv_d", 1), bv8(1), bv8(2))
        assert definitely_false(T.ugt(sel, bv8(100)))

    def test_definitely_true(self):
        sel = T.ite(T.var("iv_d", 1), bv8(1), bv8(2))
        assert definitely_true(T.ule(sel, bv8(2)))

    def test_unknown_is_neither(self):
        x = T.var("iv_e", 8)
        cond = T.ult(x, bv8(10))
        assert not definitely_false(cond)
        assert not definitely_true(cond)


class TestRefuteConjunction:
    def test_contradictory_bounds(self):
        x = T.var("rc_x", 8)
        assert refute_conjunction([T.ult(x, bv8(3)), T.ugt(x, bv8(200))])

    def test_eq_vs_bound(self):
        x = T.var("rc_y", 8)
        assert refute_conjunction([T.eq(x, bv8(50)), T.ult(x, bv8(10))])

    def test_negated_bound(self):
        x = T.var("rc_z", 8)
        # not(x < 100) means x >= 100; combined with x < 50 -> unsat
        assert refute_conjunction([T.not_(T.ult(x, bv8(100))),
                                   T.ult(x, bv8(50))])

    def test_satisfiable_not_refuted(self):
        x = T.var("rc_w", 8)
        assert not refute_conjunction([T.ult(x, bv8(100)),
                                       T.ugt(x, bv8(50))])

    def test_constant_reversed_operand(self):
        x = T.var("rc_v", 8)
        # 200 <= x  together with  x <= 100
        assert refute_conjunction([T.uge(x, bv8(200)), T.ule(x, bv8(100))])

    def test_empty_conjunction_sat(self):
        assert not refute_conjunction([])

    def test_soundness_never_refutes_sat_random(self):
        import random

        from repro.smt import evaluate
        rng = random.Random(7)
        x = T.var("rc_r", 8)
        for _ in range(100):
            lo = rng.randrange(0, 200)
            hi = lo + rng.randrange(0, 55)
            conds = [T.uge(x, bv8(lo)), T.ule(x, bv8(hi))]
            witness = {"rc_r": lo}
            assert all(evaluate(c, witness) == 1 for c in conds)
            assert not refute_conjunction(conds)
