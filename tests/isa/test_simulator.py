"""Unit tests for the concrete simulator across all four ISAs."""

import pytest

from repro.isa import SimError, Simulator, assemble, build, run_image


def run(target, source, input_bytes=b"", max_steps=100000):
    model = build(target)
    image = assemble(model, source, base=0x1000)
    return run_image(model, image, input_bytes=input_bytes,
                     max_steps=max_steps)


class TestRv32Execution:
    def test_arithmetic(self):
        sim = run("rv32", """
        .org 0x1000
        start:
            addi x1, x0, 7
            addi x2, x0, 6
            mul  x3, x1, x2
            halt 0
        .entry start
        """)
        assert sim.state.read_reg("x", 3) == 42

    def test_zero_register_stays_zero(self):
        sim = run("rv32", """
        .org 0x1000
        addi x0, x0, 99
        halt 0
        """)
        assert sim.state.read_reg("x", 0) == 0

    def test_signed_division_corner_cases(self):
        sim = run("rv32", """
        .org 0x1000
        addi x1, x0, 5
        addi x2, x0, 0
        div  x3, x1, x2          # /0 -> -1
        lui  x4, 0x80000
        addi x5, x0, -1
        div  x6, x4, x5          # most-negative / -1 -> most-negative
        rem  x7, x4, x5          # -> 0
        halt 0
        """)
        assert sim.state.read_reg("x", 3) == 0xffffffff
        assert sim.state.read_reg("x", 6) == 0x80000000
        assert sim.state.read_reg("x", 7) == 0

    def test_memory_byte_sign_extension(self):
        sim = run("rv32", """
        .org 0x1000
        addi x1, x0, 0x200
        addi x2, x0, -1
        sb   x2, 0(x1)
        lb   x3, 0(x1)
        lbu  x4, 0(x1)
        halt 0
        .org 0x1200
        .space 4
        """)
        assert sim.state.read_reg("x", 3) == 0xffffffff
        assert sim.state.read_reg("x", 4) == 0xff

    def test_loop_and_output(self):
        sim = run("rv32", """
        .org 0x1000
        start:
            addi x1, x0, 3
            addi x2, x0, 'a'
        loop:
            outb x2
            addi x2, x2, 1
            addi x1, x1, -1
            bne  x1, x0, loop
            halt 0
        .entry start
        """)
        assert sim.output == b"abc"

    def test_input_default_zero_after_exhaustion(self):
        sim = run("rv32", """
        .org 0x1000
        inb x1
        inb x2
        outb x1
        outb x2
        halt 0
        """, input_bytes=b"Q")
        assert sim.output == b"Q\x00"

    def test_max_steps_stops(self):
        sim = run("rv32", """
        .org 0x1000
        forever: jal x0, forever
        """, max_steps=10)
        assert not sim.halted
        assert sim.instruction_count == 10

    def test_step_after_halt_rejected(self):
        sim = run("rv32", ".org 0x1000\nhalt 0")
        with pytest.raises(SimError):
            sim.step()


class TestMips32Execution:
    def test_hi_lo_registers(self):
        sim = run("mips32", """
        .org 0x1000
        ori r1, r0, 50000
        ori r2, r0, 3
        multu r1, r2
        mflo r3
        divu r1, r2
        mflo r4
        mfhi r5
        halt 0
        """)
        assert sim.state.read_reg("r", 3) == 150000
        assert sim.state.read_reg("r", 4) == 16666
        assert sim.state.read_reg("r", 5) == 2

    def test_big_endian_memory(self):
        sim = run("mips32", """
        .org 0x1000
        ori r1, r0, 0x2000
        lui r2, 0x1234
        ori r2, r2, 0x5678
        sw  r2, 0(r1)
        lbu r3, 0(r1)
        halt 0
        .org 0x2000
        .space 4
        """)
        assert sim.state.read_reg("r", 3) == 0x12   # MSB first

    def test_jal_links_r31(self):
        sim = run("mips32", """
        .org 0x1000
        start:
            jal func
            halt 0
        func:
            ori r1, r0, 9
            jr r31
        .entry start
        """)
        assert sim.halted
        assert sim.state.read_reg("r", 1) == 9


class TestArmliteExecution:
    def test_flags_drive_branches(self):
        sim = run("armlite", """
        .org 0x1000
        movi r0, 200
        movi r1, 100
        cmp r0, r1
        bls wrong          # unsigned lower-or-same: not taken
        bhi right
        wrong: trap 1
        right:
            subs r2, r1, r1
            beq done       # zero flag set
            trap 2
        done: halt 0
        """)
        assert sim.halted and sim.exit_code == 0

    def test_overflow_flag(self):
        sim = run("armlite", """
        .org 0x1000
        movi r0, 0x7fff
        movt r0, 0x7fff    # r0 = 0x7fff7fff
        mov r1, r0
        adds r2, r0, r1    # signed overflow
        bvs ok
        trap 1
        ok: halt 0
        """)
        assert sim.halted and sim.exit_code == 0
        assert sim.state.read_reg("V", None) == 1

    def test_carry_semantics_subtraction(self):
        sim = run("armlite", """
        .org 0x1000
        movi r0, 5
        movi r1, 9
        cmp r0, r1         # 5 - 9 borrows -> C clear
        bcc ok
        trap 1
        ok: halt 0
        """)
        assert sim.exit_code == 0


class TestVlxExecution:
    def test_variable_length_stream(self):
        sim = run("vlx", """
        .org 0x1000
        nop
        ldi r1, 0x1234
        mov r2, r1
        addi r2, 1
        hlt 0
        """)
        assert sim.state.read_reg("r", 2) == 0x1235
        # nop(1) + ldi(4) + mov(2) + addi(3) + hlt(2)
        assert sim.instruction_count == 5

    def test_sixteen_bit_wraparound(self):
        sim = run("vlx", """
        .org 0x1000
        ldi r1, 0xffff
        addi r1, 1
        hlt 0
        """)
        assert sim.state.read_reg("r", 1) == 0

    def test_two_address_alu(self):
        sim = run("vlx", """
        .org 0x1000
        ldi r1, 6
        ldi r2, 7
        mul r1, r2
        hlt 0
        """)
        assert sim.state.read_reg("r", 1) == 42

    def test_jsr_jr_pair(self):
        sim = run("vlx", """
        .org 0x1000
        start:
            jsr r6, fn
            outb r1
            hlt 0
        fn:
            ldi r1, 'Z'
            jr r6
        .entry start
        """)
        assert sim.output == b"Z"


class TestDeterminism:
    @pytest.mark.parametrize("target", ["rv32", "mips32", "armlite", "vlx", "pred32"])
    def test_same_input_same_result(self, target):
        from repro.programs import build_kernel
        model, image = build_kernel("checksum", target, length=2)
        first = run_image(model, image, input_bytes=b"\x10\x20")
        second = run_image(model, image, input_bytes=b"\x10\x20")
        assert first.output == second.output
        assert first.instruction_count == second.instruction_count
