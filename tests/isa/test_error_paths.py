"""Error-path and small-API tests across the ISA layer."""

import pytest

from repro.adl import AdlError, builtin_spec_path
from repro.isa import AsmError, Image, assemble, build
from repro.isa.decoder import DecodeError


@pytest.fixture(scope="module")
def rv32():
    return build("rv32")


class TestAdlLookup:
    def test_unknown_builtin_spec(self):
        with pytest.raises(AdlError) as err:
            builtin_spec_path("z80")
        assert "rv32" in str(err.value)   # lists the available specs

    def test_builtin_spec_path_exists(self):
        import os
        assert os.path.exists(builtin_spec_path("rv32"))


class TestImageApi:
    def test_emit_patch_contains(self):
        image = Image(0x100)
        image.emit(b"\x01\x02\x03")
        assert image.end == 0x103
        assert 0x100 in image and 0x102 in image and 0x103 not in image
        image.patch(0x101, b"\xff")
        assert bytes(image.data) == b"\x01\xff\x03"

    def test_default_entry_is_base(self, rv32):
        image = assemble(rv32, ".org 0x1000\nhalt 0", base=0x1000)
        assert image.entry == 0x1000


class TestAssemblerDiagnostics:
    CASES = [
        ("frobnicate x1", "unknown mnemonic"),
        ("add x1, x2", "no operand form"),
        ("addi x1, x0, 99999", "does not fit"),
        ("beq x1, x2, 0x100001", "out of range"),
        (".bogus 3", "unknown directive"),
        (".org zzz", "expected an integer"),
        ("lw x1, 0(y9)", "no operand form"),
        ('.ascii bad', "quoted string"),
        ("beq x1, x2, missing_label", "undefined label"),
    ]

    @pytest.mark.parametrize("line,fragment", CASES)
    def test_message_content(self, rv32, line, fragment):
        with pytest.raises(AsmError) as err:
            assemble(rv32, ".org 0x1000\n" + line, base=0x1000)
        assert fragment in str(err.value)

    def test_line_numbers_reported(self, rv32):
        source = ".org 0x1000\naddi x1, x0, 1\naddi x2, x0, 1\nbroken!"
        with pytest.raises(AsmError) as err:
            assemble(rv32, source, base=0x1000)
        assert err.value.line == 4

    def test_operand_alignment_message(self, rv32):
        with pytest.raises(AsmError) as err:
            assemble(rv32, ".org 0x1000\nx: beq x1, x2, 0x1001",
                     base=0x1000)
        assert "multiple of" in str(err.value)


class TestDecoderErrors:
    def test_error_carries_address(self, rv32):
        with pytest.raises(DecodeError) as err:
            rv32.decoder.decode_bytes(b"\xff\xff\xff\xff", 0x4242)
        assert err.value.address == 0x4242
        assert "0x4242" in str(err.value)

    def test_empty_window(self, rv32):
        with pytest.raises(DecodeError):
            rv32.decoder.decode_bytes(b"", 0)

    def test_vlx_register_field_out_of_range(self):
        vlx = build("vlx")
        # mov with b-field = 9 (> 7): opcode 0x10, second byte 0x19.
        with pytest.raises(DecodeError) as err:
            vlx.decoder.decode_bytes(b"\x10\x19", 0)
        assert "register index" in str(err.value)


class TestModelApi:
    def test_register_name_rendering(self, rv32):
        assert rv32.regfiles["x"].register_name(7) == "x7"

    def test_repr_smoke(self, rv32):
        assert "rv32" in repr(rv32)
        assert "add" in repr(rv32.by_name["add"])

    def test_bind_includes_operands(self, rv32):
        beq = rv32.by_name["beq"]
        word = beq.assemble_word({"rs1": 1, "rs2": 2, "immhi": 0,
                                  "immlo": 4})
        bound = beq.bind(word)
        assert "off" in bound and bound["off"] == 8


class TestEngineConfigPaths:
    def test_no_path_inputs_collected(self):
        from repro.core import Engine, EngineConfig
        model = build("rv32")
        image = assemble(model, """
        .org 0x1000
        inb x1
        beq x1, x0, a
        halt 1
        a: halt 2
        """, base=0x1000)
        engine = Engine(model,
                        config=EngineConfig(collect_path_inputs=False))
        engine.load_image(image)
        result = engine.explore()
        assert all(p.input_bytes == b"" for p in result.paths)

    def test_flat_memory_config(self):
        from repro.core import Engine, EngineConfig
        model = build("rv32")
        image = assemble(model, ".org 0x1000\nhalt 0", base=0x1000)
        engine = Engine(model, config=EngineConfig(cow_memory=False))
        engine.load_image(image)
        result = engine.explore()
        assert len(result.paths) == 1
