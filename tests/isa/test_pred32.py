"""pred32-specific semantics tests: predicated execution corner cases."""

import pytest

from repro import core
from repro.core import Engine
from repro.isa import assemble, build, run_image


def run(source, input_bytes=b""):
    model = build("pred32")
    image = assemble(model, source, base=0x1000)
    return run_image(model, image, input_bytes=input_bytes)


class TestPredicates:
    def test_always_predicate(self):
        sim = run("""
        .org 0x1000
        movi 0, r1, 42
        halt 0
        """)
        assert sim.state.read_reg("r", 1) == 42

    @pytest.mark.parametrize("pd,z_expected", [(1, 7), (2, 0)])
    def test_z_predicates(self, pd, z_expected):
        sim = run("""
        .org 0x1000
        movi 0, r1, 5
        movi 0, r2, 5
        cmp r1, r2          # Z=1
        movi %d, r3, 7
        halt 0
        """ % pd)
        assert sim.state.read_reg("r", 3) == z_expected

    def test_signed_vs_unsigned_flags(self):
        # -1 vs 1: N (signed lt) set, U (unsigned lt) clear.
        sim = run("""
        .org 0x1000
        movi 0, r1, 0
        movi 0, r2, 1
        sub 0, r1, r1, r2    # r1 = -1
        cmp r1, r2
        movi 3, r3, 11       # N: executes
        movi 5, r4, 22       # U: skipped (0xffffffff >u 1)
        movi 6, r5, 33       # !U: executes
        halt 0
        """)
        assert sim.state.read_reg("r", 3) == 11
        assert sim.state.read_reg("r", 4) == 0
        assert sim.state.read_reg("r", 5) == 33

    def test_undefined_predicate_is_nop(self):
        sim = run("""
        .org 0x1000
        movi 7, r1, 99       # pd=7: no predicate matches -> skip
        halt 0
        """)
        assert sim.state.read_reg("r", 1) == 0

    def test_predicated_store_skipped(self):
        sim = run("""
        .org 0x1000
        movi 0, r1, 5
        cmpi r1, 5           # Z=1
        movi 0, r2, 0x1200
        movi 0, r3, 77
        stb 2, r3, [r2, 0]   # !Z: skipped
        ldb 0, r4, [r2, 0]
        halt 0
        .org 0x1200
        .space 4
        """)
        assert sim.state.read_reg("r", 4) == 0

    def test_predicated_branch(self):
        sim = run("""
        .org 0x1000
        movi 0, r1, 3
        cmpi r1, 9
        b 5, taken           # U: 3 <u 9
        halt 1
        taken: halt 2
        """)
        assert sim.exit_code == 2

    def test_constant_synthesis_full_word(self):
        sim = run("""
        .org 0x1000
        movi 0, r1, 0x3039          # low 14 bits of 0xdeadbeef? build piecewise
        mov14 0, r1, 0x2b6f
        mov28 0, r1, 0xd
        halt 0
        """)
        value = sim.state.read_reg("r", 1)
        assert value == (0xd << 28) | (0x2b6f << 14) | 0x3039


class TestPred32Symbolic:
    def test_predicates_fork_on_symbolic_flags(self):
        """A symbolic cmp makes predicated instructions fork paths."""
        model = build("pred32")
        image = assemble(model, """
        .org 0x1000
        start:
            inb r1
            cmpi r1, 10
            movi 5, r2, 1       # if U (r1 < 10)
            movi 6, r3, 1       # if !U
            cmpi r2, 1
            b 1, small
            halt 1
        small:
            halt 2
        .entry start
        """, base=0x1000)
        engine = Engine(model)
        engine.load_image(image)
        result = engine.explore()
        codes = {p.exit_code for p in result.paths}
        assert codes == {1, 2}
        by_code = {p.exit_code: p for p in result.paths}
        assert by_code[2].input_bytes[0] < 10
        assert by_code[1].input_bytes[0] >= 10

    def test_predication_defect_parity_with_rv32(self):
        """The same defect program yields the same defect on the
        predicated ISA as on a branch-based ISA."""
        from repro.programs import suite
        case = suite.case_by_name("oob_write")
        rv32_hit, rv32_result, _ = suite.run_case(case, "rv32", "bad")
        pred_hit, pred_result, _ = suite.run_case(case, "pred32", "bad")
        assert rv32_hit and pred_hit
        rv32_defect = rv32_result.first_defect(case.defect_kind)
        pred_defect = pred_result.first_defect(case.defect_kind)
        assert (rv32_defect.input_bytes[0] >= 16
                and pred_defect.input_bytes[0] >= 16)
