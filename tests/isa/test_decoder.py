"""Unit tests for the generated decoder (incl. variable-length decode)."""

import pytest

from repro.isa import build
from repro.isa.decoder import DecodeError


class TestRv32Decode:
    def setup_method(self):
        self.model = build("rv32")

    def _decode(self, word):
        return self.model.decoder.decode_bytes(
            word.to_bytes(4, "little"), 0x1000)

    def test_add(self):
        # add x3, x1, x2 = funct7=0 rs2=2 rs1=1 funct3=0 rd=3 op=0x33
        word = (2 << 20) | (1 << 15) | (3 << 7) | 0x33
        decoded = self._decode(word)
        assert decoded.instruction.name == "add"
        assert decoded.fields["rd"] == 3
        assert decoded.fields["rs1"] == 1
        assert decoded.fields["rs2"] == 2

    def test_sub_distinguished_by_funct7(self):
        word = (0x20 << 25) | (2 << 20) | (1 << 15) | (3 << 7) | 0x33
        assert self._decode(word).instruction.name == "sub"

    def test_invalid_raises_with_address(self):
        with pytest.raises(DecodeError) as err:
            self._decode(0xffffffff)
        assert err.value.address == 0x1000

    def test_branch_operand_derived(self):
        # beq x1, x2, +8: immhi:immlo:0 == 8 -> immlo = 4
        word = (2 << 20) | (1 << 15) | (4 << 7) | 0x63
        decoded = self._decode(word)
        assert decoded.instruction.name == "beq"
        assert decoded.fields["off"] == 8

    def test_decode_cache_hit(self):
        word = (2 << 20) | (1 << 15) | (3 << 7) | 0x33
        data = word.to_bytes(4, "little")
        first = self.model.decoder.decode_bytes(data, 0x1000)
        second = self.model.decoder.decode_bytes(data, 0x1000)
        assert first is second

    def test_cache_clear(self):
        self.model.decoder.cache_clear()
        word = (2 << 20) | (1 << 15) | (3 << 7) | 0x33
        assert self.model.decoder.decode_bytes(
            word.to_bytes(4, "little"), 0).instruction.name == "add"


class TestVariableLength:
    def setup_method(self):
        self.model = build("vlx")

    def test_one_byte(self):
        decoded = self.model.decoder.decode_bytes(b"\x00\xff\xff\xff", 0)
        assert decoded.instruction.name == "nop"
        assert decoded.length == 1

    def test_two_bytes(self):
        # mov r1, r2: op=0x10, byte2 = a:4 b:4 = 0x12
        decoded = self.model.decoder.decode_bytes(b"\x10\x12\xff\xff", 0)
        assert decoded.instruction.name == "mov"
        assert decoded.length == 2
        assert decoded.fields["a"] == 1 and decoded.fields["b"] == 2

    def test_three_bytes(self):
        # beq r1, r2, off=4: op=0x42, a/b byte, off byte
        decoded = self.model.decoder.decode_bytes(b"\x42\x12\x04\xff", 0)
        assert decoded.instruction.name == "beq"
        assert decoded.length == 3
        assert decoded.fields["boff"] == 4

    def test_four_bytes(self):
        # ldi r3, 0x1234: op=0x20, reg byte (z:4 rr:4 -> rr low nibble of
        # the second byte? fields: imm:16 z:4 rr:4 op:8, little endian)
        word = (0x1234 << 16) | (3 << 8) | 0x20
        decoded = self.model.decoder.decode_bytes(
            word.to_bytes(4, "little"), 0)
        assert decoded.instruction.name == "ldi"
        assert decoded.length == 4
        assert decoded.fields["rr"] == 3
        assert decoded.fields["imm"] == 0x1234

    def test_short_window_still_decodes_short_instruction(self):
        decoded = self.model.decoder.decode_bytes(b"\x00", 0)
        assert decoded.instruction.name == "nop"

    def test_short_window_cannot_decode_long_instruction(self):
        with pytest.raises(DecodeError):
            self.model.decoder.decode_bytes(b"\x20\x03", 0)  # ldi needs 4

    def test_max_length(self):
        assert self.model.decoder.max_length == 4


class TestBigEndianDecode:
    def test_mips_addu(self):
        model = build("mips32")
        # addu r3, r1, r2: op=0 rs=1 rt=2 rd=3 shamt=0 funct=0x21
        word = (1 << 21) | (2 << 16) | (3 << 11) | 0x21
        decoded = model.decoder.decode_bytes(word.to_bytes(4, "big"), 0)
        assert decoded.instruction.name == "addu"
        assert decoded.fields["rd"] == 3
