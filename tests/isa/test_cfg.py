"""Tests for static CFG recovery."""

import pytest

from repro.isa import assemble, build
from repro.isa.cfg import (
    BRANCH,
    FALL_THROUGH,
    HALT,
    INDIRECT,
    JUMP,
    TRAP,
    recover_cfg,
    static_successors,
)


def cfg_for(target, source):
    model = build(target)
    image = assemble(model, source, base=0x1000)
    return model, image, recover_cfg(model, image)


class TestStaticSuccessors:
    def _decode(self, model, image, addr):
        offset = addr - image.base
        window = bytes(image.data[offset:offset + 4]) + b"\x00" * 4
        return model.decoder.decode_bytes(window, addr)

    def test_fall_through_only(self):
        model, image, _ = cfg_for("rv32", ".org 0x1000\naddi x1, x0, 1")
        decoded = self._decode(model, image, 0x1000)
        assert static_successors(model, decoded) == [(0x1004, FALL_THROUGH)]

    def test_conditional_branch_two_targets(self):
        model, image, _ = cfg_for("rv32", """
        .org 0x1000
        beq x1, x2, 0x1010
        """)
        decoded = self._decode(model, image, 0x1000)
        succs = static_successors(model, decoded)
        assert (0x1010, BRANCH) in succs
        assert (0x1004, FALL_THROUGH) in succs

    def test_unconditional_jump_single_target(self):
        model, image, _ = cfg_for("rv32", """
        .org 0x1000
        jal x0, 0x1020
        """)
        decoded = self._decode(model, image, 0x1000)
        succs = static_successors(model, decoded)
        assert succs == [(0x1020, JUMP)]

    def test_indirect_jump(self):
        model, image, _ = cfg_for("rv32", """
        .org 0x1000
        jalr x0, 0(x1)
        """)
        decoded = self._decode(model, image, 0x1000)
        assert static_successors(model, decoded) == [(None, INDIRECT)]

    def test_halt_and_trap(self):
        model, image, _ = cfg_for("rv32", ".org 0x1000\nhalt 0\ntrap 1")
        first = self._decode(model, image, 0x1000)
        second = self._decode(model, image, 0x1004)
        assert static_successors(model, first) == [(None, HALT)]
        assert static_successors(model, second) == [(None, TRAP)]

    def test_mips_branch_pcrel_base(self):
        model, image, _ = cfg_for("mips32", """
        .org 0x1000
        top: bne r1, r2, top
        """)
        decoded = model.decoder.decode_bytes(bytes(image.data), 0x1000)
        succs = static_successors(model, decoded)
        assert (0x1000, BRANCH) in succs        # pc+4+off == top
        assert (0x1004, FALL_THROUGH) in succs


class TestRecoverCfg:
    DIAMOND = """
    .org 0x1000
    start:
        inb x1
        beq x1, x0, left
        addi x2, x0, 1
        jal x0, join
    left:
        addi x2, x0, 2
    join:
        outb x2
        halt 0
    .entry start
    """

    def test_diamond_block_structure(self):
        _, _, cfg = cfg_for("rv32", self.DIAMOND)
        assert cfg.block_count == 4
        assert cfg.entry == 0x1000
        entry_block = cfg.blocks[0x1000]
        targets = {t for t, _k in entry_block.successors}
        assert len(targets) == 2

    def test_all_instructions_discovered(self):
        _, _, cfg = cfg_for("rv32", self.DIAMOND)
        assert len(cfg.instruction_addresses) == 7

    def test_block_of(self):
        _, _, cfg = cfg_for("rv32", self.DIAMOND)
        assert cfg.block_of(0x1004).start == 0x1000
        assert cfg.block_of(0x9999) is None

    def test_loop_back_edge(self):
        _, _, cfg = cfg_for("rv32", """
        .org 0x1000
        start:
            addi x1, x1, 1
        loop:
            addi x2, x2, 1
            bne x2, x3, loop
            halt 0
        .entry start
        """)
        loop_block = cfg.blocks[0x1004]
        assert (0x1004, BRANCH) in loop_block.successors

    def test_unreachable_code_not_included(self):
        _, _, cfg = cfg_for("rv32", """
        .org 0x1000
        start:
            halt 0
            addi x1, x0, 1     # dead
        .entry start
        """)
        assert 0x1004 not in cfg.instruction_addresses

    def test_indirect_flagged(self):
        _, _, cfg = cfg_for("rv32", """
        .org 0x1000
        jalr x0, 0(x5)
        """)
        assert cfg.has_indirect

    def test_data_in_code_does_not_crash(self):
        _, _, cfg = cfg_for("rv32", """
        .org 0x1000
        jal x0, next
        .word 0xffffffff
        next: halt 0
        """)
        # The bad word is skipped (jumped over); recovery succeeds.
        assert 0x1008 in cfg.instruction_addresses

    @pytest.mark.parametrize("target", ["rv32", "mips32", "armlite", "vlx", "pred32"])
    def test_kernels_recover_everywhere(self, target):
        from repro.programs import build_kernel
        model, image = build_kernel("bsearch", target)
        cfg = recover_cfg(model, image)
        assert cfg.block_count >= 5
        assert cfg.edge_count >= cfg.block_count

    def test_risc_isas_share_cfg_shape(self):
        """Same portable program, same CFG shape across one-to-one
        lowered ISAs (vlx differs: branch lowering adds jump blocks)."""
        from repro.programs import build_kernel
        shapes = set()
        for target in ("rv32", "mips32", "armlite"):
            model, image = build_kernel("bsearch", target)
            cfg = recover_cfg(model, image)
            shapes.add((cfg.block_count, cfg.edge_count))
        assert len(shapes) == 1
