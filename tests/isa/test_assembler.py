"""Unit tests for the generated assembler."""

import pytest

from repro.isa import AsmError, assemble, build, format_instruction


@pytest.fixture(scope="module")
def rv32():
    return build("rv32")


@pytest.fixture(scope="module")
def vlx():
    return build("vlx")


def asm(model, text, base=0x1000):
    return assemble(model, ".org %#x\n%s" % (base, text), base=base)


class TestBasicAssembly:
    def test_single_instruction(self, rv32):
        image = asm(rv32, "addi x1, x0, 5")
        assert len(image.data) == 4
        decoded = rv32.decoder.decode_bytes(bytes(image.data), 0x1000)
        assert decoded.instruction.name == "addi"
        assert decoded.fields["imm"] == 5

    def test_register_aliases(self, rv32):
        image = asm(rv32, "addi sp, sp, -16")
        decoded = rv32.decoder.decode_bytes(bytes(image.data), 0x1000)
        assert decoded.fields["rd"] == 2 and decoded.fields["rs1"] == 2

    def test_negative_immediate(self, rv32):
        image = asm(rv32, "addi x1, x0, -5")
        decoded = rv32.decoder.decode_bytes(bytes(image.data), 0x1000)
        assert decoded.fields["imm"] == 0xffb

    def test_hex_and_char_immediates(self, rv32):
        image = asm(rv32, "addi x1, x0, 0x41\naddi x2, x0, 'A'")
        first = rv32.decoder.decode_bytes(bytes(image.data[:4]), 0x1000)
        second = rv32.decoder.decode_bytes(bytes(image.data[4:]), 0x1004)
        assert first.fields["imm"] == second.fields["imm"] == 0x41

    def test_memory_operand_syntax(self, rv32):
        image = asm(rv32, "lw x1, -4(x2)")
        decoded = rv32.decoder.decode_bytes(bytes(image.data), 0x1000)
        assert decoded.instruction.name == "lw"
        assert decoded.fields["imm"] == 0xffc

    def test_unknown_mnemonic(self, rv32):
        with pytest.raises(AsmError):
            asm(rv32, "frobnicate x1")

    def test_wrong_operand_shape(self, rv32):
        with pytest.raises(AsmError):
            asm(rv32, "add x1, x2")          # missing operand
        with pytest.raises(AsmError):
            asm(rv32, "add x1, x2, 5")       # immediate where reg expected

    def test_wrong_regfile_rejected(self, vlx):
        with pytest.raises(AsmError):
            asm(vlx, "mov r1, x2")

    def test_immediate_range_checked(self, rv32):
        with pytest.raises(AsmError):
            asm(rv32, "addi x1, x0, 4096")   # 12-bit field
        with pytest.raises(AsmError):
            asm(rv32, "addi x1, x0, -2049")


class TestLabelsAndBranches:
    def test_backward_branch(self, rv32):
        image = asm(rv32, "top:\naddi x1, x1, 1\nbne x1, x2, top")
        decoded = rv32.decoder.decode_bytes(bytes(image.data[4:]), 0x1004)
        assert decoded.fields["off"] == (-4) & 0x1fff

    def test_forward_branch(self, rv32):
        image = asm(rv32, "beq x1, x2, skip\naddi x1, x1, 1\nskip: halt 0")
        decoded = rv32.decoder.decode_bytes(bytes(image.data[:4]), 0x1000)
        assert decoded.fields["off"] == 8

    def test_undefined_label(self, rv32):
        with pytest.raises(AsmError):
            asm(rv32, "beq x1, x2, nowhere")

    def test_duplicate_label(self, rv32):
        with pytest.raises(AsmError):
            asm(rv32, "a:\na:\nhalt 0")

    def test_misaligned_branch_target_rejected(self, rv32):
        # rv32 branch offsets must be even (trailing zero bit).
        with pytest.raises(AsmError):
            asm(rv32, "beq x1, x2, 3")

    def test_branch_range_checked(self, rv32):
        source = "beq x1, x2, far\n" + ".space 5000\n" + "far: halt 0"
        with pytest.raises(AsmError):
            asm(rv32, source)

    def test_entry_directive(self, rv32):
        image = asm(rv32, ".entry main\nnoplike: addi x0, x0, 0\nmain: halt 0")
        assert image.entry == 0x1004

    def test_undefined_entry_rejected(self, rv32):
        with pytest.raises(AsmError):
            asm(rv32, ".entry nowhere\nhalt 0")

    def test_pcrel_base_mips(self):
        mips = build("mips32")
        image = assemble(mips, """
        .org 0x1000
        top:
            addiu r1, r1, 1
            bne r1, r2, top
        """, base=0x1000)
        decoded = mips.decoder.decode_bytes(bytes(image.data[4:]), 0x1004)
        # encoded = target - (insn + 4) = 0x1000 - 0x1008 = -8
        assert decoded.fields["off"] == (-8) & 0x3ffff


class TestDirectives:
    def test_byte_half_word(self, rv32):
        image = asm(rv32, ".byte 1, 2\n.half 0x0304\n.word 0x05060708")
        assert bytes(image.data) == b"\x01\x02\x04\x03\x08\x07\x06\x05"

    def test_word_is_big_endian_on_mips(self):
        mips = build("mips32")
        image = assemble(mips, ".org 0x1000\n.word 0x01020304", base=0x1000)
        assert bytes(image.data) == b"\x01\x02\x03\x04"

    def test_ascii_and_asciiz(self, rv32):
        image = asm(rv32, '.ascii "ab"\n.asciiz "cd"')
        assert bytes(image.data) == b"abcd\x00"

    def test_string_with_comment_chars_inside(self, rv32):
        image = asm(rv32, '.ascii "a#b"  # real comment')
        assert bytes(image.data) == b"a#b"

    def test_space_and_align(self, rv32):
        image = asm(rv32, ".byte 1\n.align 4\n.byte 2")
        assert bytes(image.data) == b"\x01\x00\x00\x00\x02"

    def test_equ_constants(self, rv32):
        image = asm(rv32, ".equ MAGIC, 42\naddi x1, x0, MAGIC")
        decoded = rv32.decoder.decode_bytes(bytes(image.data), 0x1000)
        assert decoded.fields["imm"] == 42

    def test_word_with_label_value(self, rv32):
        image = asm(rv32, "here: .word here")
        assert int.from_bytes(bytes(image.data), "little") == 0x1000

    def test_org_gap_zero_filled(self, rv32):
        image = asm(rv32, ".byte 1\n.org 0x1008\n.byte 2")
        assert bytes(image.data) == b"\x01" + b"\x00" * 7 + b"\x02"

    def test_org_below_base_moves_image(self, rv32):
        image = assemble(rv32, ".org 0x800\n.byte 9", base=0x1000)
        assert image.base == 0x800
        assert image.data[0] == 9

    def test_unknown_directive(self, rv32):
        with pytest.raises(AsmError):
            asm(rv32, ".bogus 1")

    def test_error_carries_line_number(self, rv32):
        with pytest.raises(AsmError) as err:
            asm(rv32, "addi x1, x0, 0\nbadmnemonic x1")
        assert err.value.line == 3   # .org line is line 1


class TestRoundTrip:
    """assemble -> decode -> disassemble -> assemble must be stable."""

    @pytest.mark.parametrize("target", ["rv32", "mips32", "armlite", "vlx", "pred32"])
    def test_every_instruction_roundtrips(self, target):
        model = build(target)
        for instr in model.instructions:
            source = _render_sample(model, instr)
            if source is None:
                continue
            image = assemble(model, ".org 0x1000\n" + source, base=0x1000)
            window = bytes(image.data) + b"\x00" * 8
            decoded = model.decoder.decode_bytes(window, 0x1000)
            assert decoded.instruction.name == instr.name, source
            text = format_instruction(model, decoded)
            image2 = assemble(model, ".org 0x1000\n" + text, base=0x1000)
            assert image2.data == image.data, (source, text)


def _render_sample(model, instr):
    """Produce one sample assembly line for an instruction definition."""
    from repro.adl.analyze import syntax_placeholders
    text = instr.syntax
    for name, kind in syntax_placeholders(text):
        placeholder = "{%s}" % name if kind is None else "{%s:%s}" % (name,
                                                                      kind)
        if kind is not None:
            value = model.regfiles[kind].register_name(1)
        else:
            operand = instr.operands.get(name)
            if operand is not None and operand.pcrel:
                value = "0x1000"     # branch to self
            else:
                value = "4" if operand is None or not operand.signed else "4"
        text = text.replace(placeholder, str(value))
    return text
