"""Unit tests for generated ISA models (field/operand binding, encoding)."""

import pytest

from repro.adl.analyze import analyze
from repro.adl.parser import parse_spec
from repro.isa.model import ArchModel, build

TOY = """
architecture toy {
  wordsize 16
  endian little
  regfile r[4] width 16 zero 0
  pc width 16
  alias acc = r[1]
  encoding e { imm:4 b:4 op:8 }
  instruction addi {
    encoding e
    match op = 1
    syntax "addi {b:r}, {imm}"
    semantics { r[b] = r[b] + zext(imm, 16); }
  }
  instruction br {
    encoding e
    match op = 2
    operand off = imm :: b :: 0[1] signed pcrel
    syntax "br {off}"
    semantics { pc = pc + sext(off, 16); }
  }
}
"""


@pytest.fixture(scope="module")
def toy_model():
    return ArchModel(analyze(parse_spec(TOY)))


class TestModelStructure:
    def test_register_names_include_aliases(self, toy_model):
        assert toy_model.register_names["r2"] == ("r", 2)
        assert toy_model.register_names["acc"] == ("r", 1)

    def test_zero_register_recorded(self, toy_model):
        assert toy_model.regfiles["r"].zero_index == 0

    def test_instruction_lookup(self, toy_model):
        assert toy_model.by_name["addi"].mnemonic == "addi"

    def test_lengths(self, toy_model):
        assert toy_model.instruction_lengths == [2]

    def test_mnemonic_candidates(self, toy_model):
        assert len(toy_model.mnemonic_candidates("addi")) == 1
        assert toy_model.mnemonic_candidates("nosuch") == []

    def test_semantics_translated(self, toy_model):
        assert toy_model.by_name["addi"].semantics


class TestFieldBinding:
    def test_extract_fields(self, toy_model):
        instr = toy_model.by_name["addi"]
        # imm at bits [15:12], b at [11:8], op at [7:0]
        fields = instr.extract_fields(0x5301)
        assert fields == {"imm": 5, "b": 3, "op": 1}

    def test_operand_value_concatenates(self, toy_model):
        instr = toy_model.by_name["br"]
        fields = instr.extract_fields(0x2102)   # imm=2, b=1
        bound = instr.bind(0x2102)
        # off = imm(4) :: b(4) :: 0 -> (2 << 5) | (1 << 1) = 66
        assert bound["off"] == (2 << 5) | (1 << 1)
        assert fields["op"] == 2

    def test_encode_operand_roundtrip(self, toy_model):
        instr = toy_model.by_name["br"]
        operand = instr.operands["off"]
        fields = {}
        instr.encode_operand(operand, 66, fields)
        assert fields == {"imm": 2, "b": 1}

    def test_assemble_word(self, toy_model):
        instr = toy_model.by_name["addi"]
        word = instr.assemble_word({"imm": 5, "b": 3})
        assert word == 0x5301
        assert instr.extract_fields(word) == {"imm": 5, "b": 3, "op": 1}


class TestByteOrder:
    def test_little_endian_words(self, toy_model):
        assert toy_model.bytes_from_word(0x1234, 2) == b"\x34\x12"
        assert toy_model.word_from_bytes(b"\x34\x12") == 0x1234

    def test_big_endian_words(self):
        model = build("mips32")
        assert model.bytes_from_word(0x12345678, 4) == b"\x12\x34\x56\x78"


class TestBuiltinModels:
    @pytest.mark.parametrize("name,expect_endian,expect_lengths", [
        ("rv32", "little", [4]),
        ("mips32", "big", [4]),
        ("armlite", "little", [4]),
        ("vlx", "little", [1, 2, 3, 4]),
        ("pred32", "little", [4]),
    ])
    def test_builds(self, name, expect_endian, expect_lengths):
        model = build(name)
        assert model.endian == expect_endian
        assert model.instruction_lengths == expect_lengths
        assert len(model.instructions) >= 28

    def test_build_caches(self):
        assert build("rv32") is build("rv32")

    def test_build_fresh(self):
        assert build("rv32", fresh=True) is not build("rv32")
