"""Property-based tests (hypothesis) for the solver substrate.

These pin the invariants everything else relies on: construction-time
simplification preserves semantics, the bit-blaster agrees with the
evaluator, interval analysis is sound, and SAT answers are models.
"""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import SAT, UNSAT, Solver
from repro.smt import terms as T
from repro.smt.interval import interval, refute_conjunction

WIDTH = 8

_BINOPS = {
    "add": T.add, "sub": T.sub, "mul": T.mul, "udiv": T.udiv,
    "urem": T.urem, "sdiv": T.sdiv, "srem": T.srem, "and": T.and_,
    "or": T.or_, "xor": T.xor, "shl": T.shl, "lshr": T.lshr,
    "ashr": T.ashr,
}

_PREDICATES = {
    "eq": T.eq, "ult": T.ult, "ule": T.ule, "slt": T.slt, "sle": T.sle,
}


@st.composite
def term_trees(draw, depth=3):
    """Random 8-bit term over variables pa/pb/pc."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return T.bv(draw(st.integers(0, 255)), WIDTH)
        return T.var(draw(st.sampled_from(["pa", "pb", "pc"])), WIDTH)
    kind = draw(st.sampled_from(sorted(_BINOPS) + ["not", "ite", "extzext"]))
    if kind == "not":
        return T.not_(draw(term_trees(depth=depth - 1)))
    if kind == "ite":
        cond_op = draw(st.sampled_from(sorted(_PREDICATES)))
        cond = _PREDICATES[cond_op](draw(term_trees(depth=depth - 1)),
                                    draw(term_trees(depth=depth - 1)))
        return T.ite(cond, draw(term_trees(depth=depth - 1)),
                     draw(term_trees(depth=depth - 1)))
    if kind == "extzext":
        inner = draw(term_trees(depth=depth - 1))
        wide = (T.zext if draw(st.booleans()) else T.sext)(inner, 4)
        hi = draw(st.integers(0, wide.width - 1))
        lo = draw(st.integers(0, hi))
        sliced = T.extract(wide, hi, lo)
        return T.zext(sliced, WIDTH - sliced.width) if sliced.width < WIDTH \
            else T.extract(sliced, WIDTH - 1, 0)
    left = draw(term_trees(depth=depth - 1))
    right = draw(term_trees(depth=depth - 1))
    return _BINOPS[kind](left, right)


assignments = st.fixed_dictionaries({
    "pa": st.integers(0, 255),
    "pb": st.integers(0, 255),
    "pc": st.integers(0, 255),
})


class TestSimplificationSoundness:
    @given(term_trees(), assignments)
    @settings(max_examples=300, deadline=None)
    def test_simplified_equals_unsimplified(self, term, env):
        # Rebuild the same structural term with simplification disabled.
        plain_pool = T.TermPool(hash_consing=True, simplify=False)
        previous = T.set_pool(plain_pool)
        try:
            rebuilt = _rebuild(term)
            plain_value = T.evaluate(rebuilt, env)
        finally:
            T.set_pool(previous)
        assert T.evaluate(term, env) == plain_value


def _rebuild(term):
    """Clone a term into the *active* pool, node by node."""
    if term.op == T.CONST:
        return T.bv(term.value, term.width)
    if term.op == T.VAR:
        return T.var(term.name, term.width)
    args = [_rebuild(a) for a in term.args]
    factory = {
        T.ADD: T.add, T.SUB: T.sub, T.MUL: T.mul, T.UDIV: T.udiv,
        T.UREM: T.urem, T.SDIV: T.sdiv, T.SREM: T.srem, T.AND: T.and_,
        T.OR: T.or_, T.XOR: T.xor, T.SHL: T.shl, T.LSHR: T.lshr,
        T.ASHR: T.ashr, T.EQ: T.eq, T.ULT: T.ult, T.ULE: T.ule,
        T.CONCAT: T.concat, T.ITE: T.ite,
    }
    if term.op == T.NOT:
        return T.not_(args[0])
    if term.op == T.EXTRACT:
        return T.extract(args[0], *term.params)
    if term.op == T.ZEXT:
        return T.zext(args[0], term.params[0])
    if term.op == T.SEXT:
        return T.sext(args[0], term.params[0])
    return factory[term.op](*args)


class TestEvaluatorReferenceSemantics:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=200, deadline=None)
    def test_add_sub_mul_match_python(self, a, b):
        ta, tb = T.bv(a, WIDTH), T.bv(b, WIDTH)
        assert T.add(ta, tb).value == (a + b) & 0xff
        assert T.sub(ta, tb).value == (a - b) & 0xff
        assert T.mul(ta, tb).value == (a * b) & 0xff

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=200, deadline=None)
    def test_division_family_consistency(self, a, b):
        """a == udiv(a,b)*b + urem(a,b) whenever b != 0."""
        if b == 0:
            assert T.udiv(T.bv(a, 8), T.bv(0, 8)).value == 0xff
            assert T.urem(T.bv(a, 8), T.bv(0, 8)).value == a
            return
        quotient = T.udiv(T.bv(a, 8), T.bv(b, 8)).value
        remainder = T.urem(T.bv(a, 8), T.bv(b, 8)).value
        assert quotient * b + remainder == a
        assert remainder < b

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=200, deadline=None)
    def test_signed_division_identity(self, a, b):
        """sdiv/srem satisfy a == q*b + r with |r| < |b| and truncation."""
        if b == 0:
            return
        sa, sb = T.to_signed(a, 8), T.to_signed(b, 8)
        q = T.to_signed(T.sdiv(T.bv(a, 8), T.bv(b, 8)).value, 8)
        r = T.to_signed(T.srem(T.bv(a, 8), T.bv(b, 8)).value, 8)
        if sa == -128 and sb == -1:
            return  # overflow case: q wraps to -128 by definition
        assert q * sb + r == sa
        assert abs(r) < abs(sb)


class TestIntervalSoundness:
    @given(term_trees(), assignments)
    @settings(max_examples=300, deadline=None)
    def test_interval_contains_value(self, term, env):
        lo, hi = interval(term)
        value = T.evaluate(term, env)
        assert lo <= value <= hi

    @given(term_trees(depth=2), term_trees(depth=2), assignments)
    @settings(max_examples=150, deadline=None)
    def test_refute_never_rejects_satisfiable(self, left, right, env):
        cond = T.eq(left, right)
        if T.evaluate(cond, env) == 1:
            assert not refute_conjunction([cond])


class TestSolverSoundness:
    @given(term_trees(depth=2), term_trees(depth=2))
    @settings(max_examples=60, deadline=None)
    def test_sat_models_satisfy(self, left, right):
        solver = Solver()
        cond = T.eq(left, right)
        solver.add(cond)
        if solver.check() == SAT:
            assert T.evaluate(cond, solver.model()) == 1

    @given(term_trees(depth=2), assignments)
    @settings(max_examples=60, deadline=None)
    def test_witnessed_constraints_are_sat(self, term, env):
        """A constraint with a known witness must come back SAT, and the
        model must satisfy it."""
        witness_value = T.evaluate(term, env)
        cond = T.eq(term, T.bv(witness_value, WIDTH))
        solver = Solver()
        solver.add(cond)
        assert solver.check() == SAT
        assert T.evaluate(cond, solver.model()) == 1

    @given(term_trees(depth=2))
    @settings(max_examples=40, deadline=None)
    def test_term_equals_itself_plus_one_unsat(self, term):
        solver = Solver()
        solver.add(T.eq(term, T.add(term, T.bv(1, WIDTH))))
        assert solver.check() == UNSAT
