"""Stateful property test (hypothesis): cached vs cache-free solver.

A :class:`RuleBasedStateMachine` drives a cached solver (every layer on)
and a cache-free reference through random interleavings of
assert / push / pop / check, letting hypothesis *search* for an
operation sequence on which the cache changes an answer — and shrink it
to a minimal reproduction if it ever finds one.  Two invariants:

* every check's verdict is identical on both solvers, and
* every SAT model concretely satisfies every asserted conjunct
  (including the check's extra constraints).

``derandomize=True`` pins the example stream so CI runs are
deterministic (the satellite requirement: fixed seed/profile).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, precondition, rule)

from repro.smt import SAT, Solver
from repro.smt import terms as T

WIDTH = 8
_VARS = ("sa", "sb", "sc")
_PREDS = (T.eq, T.ult, T.ule, T.slt, T.sle)
_BINOPS = (T.add, T.sub, T.xor, T.and_, T.or_)


@st.composite
def atoms(draw):
    roll = draw(st.integers(0, 2))
    if roll == 0:
        return T.var(draw(st.sampled_from(_VARS)), WIDTH)
    if roll == 1:
        return T.bv(draw(st.integers(0, 255)), WIDTH)
    op = draw(st.sampled_from(_BINOPS))
    return op(T.var(draw(st.sampled_from(_VARS)), WIDTH),
              T.bv(draw(st.integers(0, 255)), WIDTH))


@st.composite
def predicates(draw):
    pred = draw(st.sampled_from(_PREDS))
    cond = pred(draw(atoms()), draw(atoms()))
    if draw(st.booleans()):
        cond = T.not_(cond)
    return cond


class CacheTwinMachine(RuleBasedStateMachine):
    """Twin solvers stepped in lockstep by hypothesis-chosen rules."""

    def __init__(self):
        super().__init__()
        self.cached = Solver()  # query cache + model cache + intervals
        self.reference = Solver(use_query_cache=False,
                                use_model_cache=False)
        self.last_extra = []

    @rule(cond=predicates())
    def assert_cond(self, cond):
        self.cached.add(cond)
        self.reference.add(cond)

    @rule()
    def push(self):
        self.cached.push()
        self.reference.push()

    @precondition(lambda self: len(self.cached._frames) > 1)
    @rule()
    def pop(self):
        self.cached.pop()
        self.reference.pop()

    @rule(extra=st.lists(predicates(), max_size=2))
    def check(self, extra):
        self.last_extra = extra
        self._check_agree(extra)

    @rule()
    def recheck_last(self):
        """Verbatim repeat — the exact-cache path must stay faithful."""
        self._check_agree(self.last_extra)

    def _check_agree(self, extra):
        got = self.cached.check(extra=extra)
        want = self.reference.check(extra=extra)
        assert got == want, "cached=%s reference=%s" % (got, want)
        if got == SAT:
            conds = self.cached.assertions() + list(extra)
            model = self.cached.model()
            assert T.all_true(conds, model), (
                "cached model %r does not satisfy the query" % (model,))

    def teardown(self):
        # Frame bookkeeping must end consistent between the twins.
        assert len(self.cached._frames) == len(self.reference._frames)


TestCacheTwins = CacheTwinMachine.TestCase
TestCacheTwins.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None,
    derandomize=True)
