"""Decoder/disassembler fuzzing: arbitrary bytes must never crash.

The generated decoder either returns a decode or raises
:class:`DecodeError` — no other exception, for any byte soup, on any ISA.
Decoded instructions must disassemble, and reassembling the disassembly
must reproduce the original bytes (full tool-chain consistency).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble, build, format_instruction
from repro.isa.decoder import DecodeError

ALL_TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]


@settings(max_examples=400, deadline=None)
@given(st.sampled_from(ALL_TARGETS), st.binary(min_size=0, max_size=8))
def test_decode_never_crashes(target, data):
    model = build(target)
    try:
        decoded = model.decoder.decode_bytes(data, 0x1000)
    except DecodeError:
        return
    assert decoded.length <= max(len(data), model.decoder.max_length)
    assert decoded.instruction in model.instructions


@settings(max_examples=300, deadline=None)
@given(st.sampled_from(ALL_TARGETS), st.binary(min_size=4, max_size=8))
def test_decode_disasm_reassemble_roundtrip(target, data):
    model = build(target)
    try:
        decoded = model.decoder.decode_bytes(data, 0x1000)
    except DecodeError:
        return
    text = format_instruction(model, decoded)
    image = assemble(model, ".org 0x1000\n" + text, base=0x1000)
    original = bytes(data[:decoded.length])
    assert bytes(image.data) == original, (text, original)


@settings(max_examples=200, deadline=None)
@given(st.sampled_from(ALL_TARGETS), st.binary(min_size=1, max_size=8),
       st.integers(0, 2**16 - 1))
def test_decode_is_address_independent_for_matching(target, data, addr):
    """Which instruction matches depends only on the bytes, not the
    address (addresses only affect pc-relative operand rendering)."""
    model = build(target)
    outcomes = []
    for address in (0x1000, addr & ~1):
        try:
            outcomes.append(
                model.decoder.decode_bytes(data, address).instruction.name)
        except DecodeError:
            outcomes.append(None)
    assert outcomes[0] == outcomes[1]
