"""Property-based tests over the system layers above the solver."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import MemoryMap, Region, SymMemory
from repro.isa import assemble, build, run_image
from repro.smt import terms as T
from repro.smt.sat import SAT, UNSAT, SatSolver


class TestSatAgainstBruteForce:
    @given(st.lists(
        st.lists(st.sampled_from([1, -1, 2, -2, 3, -3, 4, -4]),
                 min_size=1, max_size=3),
        min_size=1, max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_matches_truth_table(self, clauses):
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        got = solver.solve()
        expected = UNSAT
        for bits in range(16):
            assignment = [(bits >> v) & 1 for v in range(4)]
            if all(any((lit > 0) == (assignment[abs(lit) - 1] == 1)
                       for lit in clause) for clause in clauses):
                expected = SAT
                break
        assert got == expected
        if got == SAT:
            model = solver.model()
            for clause in clauses:
                assert any((lit > 0) == (model[abs(lit)] == 1)
                           for lit in clause)


class TestMemoryAgainstDictModel:
    @given(st.lists(st.tuples(st.sampled_from(["write", "fork", "read"]),
                              st.integers(0, 1023),
                              st.integers(0, 255)),
                    min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_cow_memory_behaves_like_dict(self, operations):
        memory_map = MemoryMap([Region(0, 4096)])
        memory = SymMemory(memory_map)
        reference = {}
        snapshots = []
        for op, addr, value in operations:
            if op == "write":
                memory.write_byte(addr, T.bv(value, 8))
                reference[addr] = value
            elif op == "fork":
                snapshots.append((memory.fork(), dict(reference)))
            else:
                assert memory.read_byte(addr).value == reference.get(addr, 0)
        # Forked snapshots must still reflect their point-in-time contents.
        for snapshot, expected in snapshots:
            for addr, value in expected.items():
                assert snapshot.read_byte(addr).value == value

    @given(st.integers(0, 4000), st.integers(0, 2**32 - 1),
           st.sampled_from(["little", "big"]))
    @settings(max_examples=100, deadline=None)
    def test_word_roundtrip(self, addr, value, endian):
        memory = SymMemory(MemoryMap([Region(0, 8192)]))
        memory.write(addr, T.bv(value, 32), 4, endian)
        assert memory.read(addr, 4, endian).value == value


class TestAssemblerEncodeDecodeProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(["rv32", "mips32", "armlite", "vlx", "pred32"]),
           st.integers(0, 2**32 - 1))
    def test_random_instances_roundtrip_fields(self, target, seed):
        """assemble_word(bind(word)) is the identity on valid instances."""
        model = build(target)
        rng = random.Random(seed)
        instr = rng.choice(model.instructions)
        fields = {}
        for field in instr.encoding.fields:
            if field.name not in instr.decl.match:
                fields[field.name] = rng.getrandbits(field.width)
        word = instr.assemble_word(fields)
        rebound = instr.bind(word)
        for name, value in fields.items():
            assert rebound[name] == value
        assert instr.assemble_word(rebound) == word

    @settings(max_examples=25, deadline=None)
    @given(st.integers(-2048, 2047))
    def test_rv32_addi_immediate_roundtrip(self, imm):
        model = build("rv32")
        image = assemble(model, ".org 0x1000\naddi x1, x0, %d" % imm,
                         base=0x1000)
        decoded = model.decoder.decode_bytes(bytes(image.data), 0x1000)
        signed = decoded.fields["imm"]
        if signed >= 2048:
            signed -= 4096
        assert signed == imm


class TestPortableCrossIsaProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=3, max_size=3))
    def test_checksum_identical_output_everywhere(self, input_bytes):
        from repro.programs import build_kernel
        observations = set()
        for target in ("rv32", "mips32", "armlite", "vlx", "pred32"):
            model, image = build_kernel("checksum", target, length=3)
            sim = run_image(model, image, input_bytes=input_bytes)
            observations.add((bytes(sim.output), sim.exit_code,
                              sim.trapped))
        assert len(observations) == 1
