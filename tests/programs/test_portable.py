"""Tests for the portable program builder and its four backends.

The key property: the SAME portable program produces the SAME observable
behaviour (output bytes, exit code) on every ISA when run concretely.
"""

import pytest

from repro.isa import assemble, build, run_image
from repro.programs.portable import TARGETS, PortableProgram, lower

ALL_TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]


def run_portable(program, target, input_bytes=b""):
    model = build(target)
    image = assemble(model, lower(program, target), base=0x1000)
    return run_image(model, image, input_bytes=input_bytes)


def simple_program():
    p = PortableProgram()
    p.org(0x1000).entry("start").label("start")
    return p


class TestLowering:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            lower(PortableProgram(), "z80")

    def test_too_many_virtual_registers(self):
        p = simple_program()
        p.li("v7", 0)
        with pytest.raises(ValueError):
            lower(p, "rv32")

    def test_targets_table(self):
        assert set(TARGETS) == set(ALL_TARGETS)
        assert TARGETS["vlx"].word_bytes == 2

    def test_vlx_constant_range_enforced(self):
        p = simple_program()
        p.li("v0", 0x12345)
        with pytest.raises(ValueError):
            lower(p, "vlx")

    def test_rv32_large_constant_li(self):
        p = simple_program()
        p.li("v0", 0xdeadbeef & 0xffff_ffff)
        p.halt(0)
        sim = run_portable(p, "rv32")
        # v0 maps to x10 on rv32
        assert sim.state.read_reg("x", 10) == 0xdeadbeef

    @pytest.mark.parametrize("target", ["rv32", "mips32", "armlite"])
    @pytest.mark.parametrize("value", [0, 1, 0x7fff, 0x8000, 0xffff,
                                       0x12340000, 0xffffffff, 0x800])
    def test_li_constant_exact(self, target, value):
        p = simple_program()
        p.li("v0", value)
        p.halt(0)
        sim = run_portable(p, target)
        regfile = {"rv32": ("x", 10), "mips32": ("r", 8),
                   "armlite": ("r", 0)}[target]
        assert sim.state.read_reg(*regfile) == value


@pytest.mark.parametrize("target", ALL_TARGETS)
class TestCrossIsaBehaviour:
    def test_arithmetic_pipeline(self, target):
        p = simple_program()
        p.li("v0", 6).li("v1", 7)
        p.alu("mul", "v2", "v0", "v1")      # 42
        p.li("v3", 5)
        p.alu("remu", "v4", "v2", "v3")     # 2
        p.alu("add", "v2", "v2", "v4")      # 44
        p.write_output("v2")
        p.halt(0)
        sim = run_portable(p, target)
        assert sim.output == b"," and sim.exit_code == 0

    def test_divu(self, target):
        p = simple_program()
        p.li("v0", 100).li("v1", 7)
        p.alu("divu", "v2", "v0", "v1")
        p.write_output("v2")
        p.halt(0)
        assert run_portable(p, target).output == bytes([14])

    def test_shifts(self, target):
        p = simple_program()
        p.li("v0", 1).li("v1", 5)
        p.alu("shl", "v2", "v0", "v1")      # 32
        p.li("v3", 4)
        p.alu("shr", "v2", "v2", "v3")      # 2
        p.write_output("v2")
        p.halt(0)
        assert run_portable(p, target).output == bytes([2])

    def test_memory_roundtrip(self, target):
        p = simple_program()
        p.li("v0", 0x1400)
        p.li("v1", 0x5b)
        p.storeb("v1", "v0", 3)
        p.loadb("v2", "v0", 3)
        p.write_output("v2")
        p.halt(0)
        p.org(0x1400).label("buf").space(8)
        assert run_portable(p, target).output == b"["

    def test_word_memory_roundtrip(self, target):
        p = simple_program()
        word = 0x1234 if target == "vlx" else 0x12345678
        p.li("v0", 0x1400)
        p.li("v1", word)
        p.storew("v1", "v0", 0)
        p.loadw("v2", "v0", 0)
        p.alu("xor", "v3", "v1", "v2")      # must be 0
        p.write_output("v3")
        p.halt(0)
        p.org(0x1400).label("buf").space(8)
        assert run_portable(p, target).output == b"\x00"

    @pytest.mark.parametrize("cond,a,b,taken", [
        ("eq", 5, 5, True), ("eq", 5, 6, False),
        ("ne", 5, 6, True), ("ne", 5, 5, False),
        ("ltu", 3, 9, True), ("ltu", 9, 3, False),
        ("geu", 9, 3, True), ("geu", 3, 9, False),
        ("ge", 3, 3, True), ("lt", 2, 3, True),
    ])
    def test_branch_conditions(self, target, cond, a, b, taken):
        p = simple_program()
        p.li("v0", a).li("v1", b)
        p.branch(cond, "v0", "v1", "yes")
        p.halt(1)
        p.label("yes")
        p.halt(2)
        sim = run_portable(p, target)
        assert sim.exit_code == (2 if taken else 1)

    def test_signed_branch_negative(self, target):
        wordmask = 0xffff if target == "vlx" else 0xffffffff
        p = simple_program()
        p.li("v0", 0)
        p.addi("v0", "v0", -1)              # -1
        p.li("v1", 1)
        p.branch("lt", "v0", "v1", "neg")   # -1 < 1 signed
        p.halt(1)
        p.label("neg")
        p.branch("ltu", "v0", "v1", "bad")  # unsigned: max > 1, not taken
        p.halt(2)
        p.label("bad")
        p.halt(3)
        assert run_portable(p, target).exit_code == 2

    def test_input_output_loop(self, target):
        p = simple_program()
        p.li("v1", 3)
        p.li("v2", 0)
        p.label("loop")
        p.branch("geu", "v2", "v1", "done")
        p.read_input("v0")
        p.write_output("v0")
        p.addi("v2", "v2", 1)
        p.jump("loop")
        p.label("done")
        p.halt(0)
        assert run_portable(p, target, b"xyz").output == b"xyz"

    def test_trap(self, target):
        p = simple_program()
        p.trap(9)
        sim = run_portable(p, target)
        assert sim.trapped and sim.trap_code == 9
