"""The Table 2 acceptance test: every defect found, no false positives.

This is the headline soundness test of the reproduction — the full
case x ISA x variant matrix.  Detection must hold on all ISAs, and good
variants must stay clean.
"""

import pytest

from repro.isa import run_image
from repro.programs import suite

ALL_TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]
CASE_NAMES = [case.name for case in suite.all_cases()]


class TestSuiteStructure:
    def test_eight_cases(self):
        assert len(suite.all_cases()) == 8

    def test_case_by_name(self):
        assert suite.case_by_name("div_by_zero").cwe == "CWE-369"
        with pytest.raises(KeyError):
            suite.case_by_name("nope")

    def test_bad_variant_name_rejected(self):
        with pytest.raises(ValueError):
            suite.case_by_name("div_by_zero").build("ugly")

    def test_repr(self):
        assert "CWE-369" in repr(suite.case_by_name("div_by_zero"))


@pytest.mark.parametrize("target", ALL_TARGETS)
@pytest.mark.parametrize("case_name", CASE_NAMES)
class TestDetectionMatrix:
    def test_bad_variant_detected(self, case_name, target):
        case = suite.case_by_name(case_name)
        detected, result, _image = suite.run_case(case, target, "bad")
        assert detected, "missed %s on %s: %s" % (case_name, target,
                                                  result.summary())

    def test_good_variant_clean(self, case_name, target):
        case = suite.case_by_name(case_name)
        detected, result, _image = suite.run_case(case, target, "good")
        assert not detected, "false positive %s on %s: %s" % (
            case_name, target, result.summary())


@pytest.mark.parametrize("target", ALL_TARGETS)
class TestTriggeringInputsReplay:
    """Solver-found inputs must reproduce the defect concretely."""

    def test_magic_trap_input_replays(self, target):
        case = suite.case_by_name("magic_trap")
        detected, result, image = suite.run_case(case, target, "bad")
        assert detected
        defect = result.first_defect(case.defect_kind)
        from repro.isa import build
        sim = run_image(build(target), image,
                        input_bytes=defect.input_bytes)
        assert sim.trapped

    def test_div_zero_input_is_zero(self, target):
        case = suite.case_by_name("div_by_zero")
        _, result, _ = suite.run_case(case, target, "bad")
        defect = result.first_defect(case.defect_kind)
        assert defect.input_bytes[0] == 0

    def test_oob_write_index_out_of_bounds(self, target):
        case = suite.case_by_name("oob_write")
        _, result, _ = suite.run_case(case, target, "bad")
        defect = result.first_defect(case.defect_kind)
        assert defect.input_bytes[0] >= suite.BUF_SIZE

    def test_underflow_trigger_is_zero_length(self, target):
        case = suite.case_by_name("underflow_wrap")
        _, result, _ = suite.run_case(case, target, "bad")
        defect = result.first_defect(case.defect_kind)
        assert defect.input_bytes[0] == 0
