"""Tests for the benchmark kernels (symbolic solve + concrete replay)."""

import pytest

from repro import core
from repro.core import Engine
from repro.isa import run_image
from repro.programs import build_kernel
from repro.programs.kernels import KERNELS, bsearch, checksum, maze

ALL_TARGETS = ["rv32", "mips32", "armlite", "vlx", "pred32"]


def solve(target, kernel, **params):
    model, image = build_kernel(kernel, target, **params)
    engine = Engine(model)
    engine.load_image(image)
    result = engine.explore()
    return model, image, result


class TestKernelCatalog:
    def test_all_kernels_listed(self):
        assert set(KERNELS) == {"maze", "password", "checksum", "bsearch",
                                "dispatcher", "diamonds", "exerciser"}

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            build_kernel("labyrinth", "rv32")

    def test_bsearch_table_validated(self):
        with pytest.raises(ValueError):
            bsearch(table=[5, 3])                 # unsorted & wrong size


@pytest.mark.parametrize("target", ALL_TARGETS)
class TestKernelSolutions:
    def test_maze_unique_solution(self, target):
        model, image, result = solve(target, "maze", depth=4,
                                     solution=0b1011)
        traps = [d for d in result.defects if d.kind == core.TRAP]
        assert len(traps) == 1
        # 2**4 paths: 15 halted + 1 trapped
        assert len(result.paths) == 15
        sim = run_image(model, image, input_bytes=traps[0].input_bytes)
        assert sim.trapped
        bits = [b & 1 for b in traps[0].input_bytes[:4]]
        assert bits == [1, 0, 1, 1]

    def test_password_exact_input(self, target):
        model, image, result = solve(target, "password", secret=b"s3")
        defect = result.first_defect(core.TRAP)
        assert defect.input_bytes == b"s3"

    def test_checksum_solution_replays(self, target):
        model, image, result = solve(target, "checksum", length=3,
                                     magic=0x2222)
        defect = result.first_defect(core.TRAP)
        assert defect is not None
        sim = run_image(model, image, input_bytes=defect.input_bytes)
        assert sim.trapped

    def test_checksum_solution_is_correct_hash(self, target):
        model, image, result = solve(target, "checksum", length=3,
                                     magic=0x2222)
        defect = result.first_defect(core.TRAP)
        acc = 0
        for byte in defect.input_bytes[:3]:
            acc = (acc * 31 + byte) & 0xffff
        assert acc == 0x2222

    def test_bsearch_finds_needle_slot(self, target):
        model, image, result = solve(target, "bsearch")
        defect = result.first_defect(core.TRAP)
        assert defect is not None
        assert defect.input_bytes[0] == 181    # table[13]


class TestKernelShapes:
    def test_maze_path_count_is_exponential(self):
        for depth in (3, 5):
            _, _, result = solve("rv32", "maze", depth=depth)
            assert len(result.paths) + len(result.defects) == 2 ** depth

    def test_checksum_single_solve_path(self):
        _, _, result = solve("rv32", "checksum", length=2)
        # No intermediate branching: exactly one halted path plus the trap.
        assert len(result.paths) == 1

    def test_maze_solution_masked_to_depth(self):
        program = maze(depth=2, solution=0xff)
        # No exception: solution masked to 2 bits internally.
        assert program.ops
