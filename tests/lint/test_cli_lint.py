"""``repro lint`` command-line behaviour: exit codes, formats, baseline
workflow, telemetry hand-off to ``repro stats``."""

import json
import os

import pytest

from repro.cli import main

SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


def fixture(name):
    return os.path.join(SPEC_DIR, name + ".adl")


class TestExitCodes:
    def test_clean_builtin_exits_zero(self, capsys):
        assert main(["lint", "rv32"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines()[-1].startswith("lint:")

    def test_all_builtins_exit_zero(self, capsys):
        assert main(["lint", "--all"]) == 0
        assert "5 specs" in capsys.readouterr().out

    def test_broken_fixture_exits_three(self, capsys):
        assert main(["lint", fixture("ambiguous")]) == 3
        out = capsys.readouterr().out
        assert "smt-ambiguity" in out
        assert "witness" in out

    def test_warn_only_fixture_exits_zero(self, capsys):
        assert main(["lint", fixture("dead_temp")]) == 0
        assert "dead-assignment" in capsys.readouterr().out

    def test_missing_spec_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_spec_exits_one(self, capsys):
        assert main(["lint", "nonesuch"]) == 1
        assert "nonesuch" in capsys.readouterr().err

    def test_unknown_pass_exits_two(self, capsys):
        assert main(["lint", "rv32", "--enable", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestListPasses:
    def test_lists_every_pass(self, capsys):
        assert main(["lint", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for pass_id in ("translation", "shadowed-rule", "smt-ambiguity",
                        "smt-roundtrip"):
            assert pass_id in out


class TestFormats:
    def test_json_to_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "report.json")
        code = main(["lint", fixture("shadowed"), "--format", "json",
                     "--out", out_path])
        assert code == 3
        with open(out_path) as handle:
            data = json.load(handle)
        assert data["format"] == "repro-lint"
        assert data["counts"]["error"] > 0

    def test_sarif_stdout(self, capsys):
        code = main(["lint", fixture("missing_pc"), "--format", "sarif"])
        assert code == 3
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == "2.1.0"
        assert data["runs"][0]["results"]

    def test_timings_flag(self, capsys):
        assert main(["lint", "vlx", "--timings"]) == 0
        assert "pass timings" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_baseline_suppresses_and_exit_goes_green(self, tmp_path,
                                                     capsys):
        base = str(tmp_path / "baseline.json")
        assert main(["lint", fixture("shadowed"),
                     "--write-baseline", base]) == 3
        capsys.readouterr()
        assert main(["lint", fixture("shadowed"),
                     "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_new_error_still_gates(self, tmp_path, capsys):
        base = str(tmp_path / "baseline.json")
        assert main(["lint", fixture("clean"),
                     "--write-baseline", base]) == 0
        capsys.readouterr()
        # Same baseline against a spec with real errors: still red.
        assert main(["lint", fixture("ambiguous"),
                     "--baseline", base]) == 3

    def test_corrupt_baseline_exits_one(self, tmp_path, capsys):
        base = tmp_path / "corrupt.json"
        base.write_text("{}")
        assert main(["lint", "rv32", "--baseline", str(base)]) == 1
        assert "baseline" in capsys.readouterr().err


class TestTelemetry:
    def test_stats_reads_lint_summary(self, tmp_path, capsys):
        run_path = str(tmp_path / "lint.jsonl")
        assert main(["lint", "--all", "--telemetry-out", run_path]) == 0
        capsys.readouterr()
        assert main(["stats", run_path]) == 0
        out = capsys.readouterr().out
        assert "lint summary:" in out
        assert "lint.findings.error" in out
        assert "lint.front-end" in out
