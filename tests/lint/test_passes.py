"""Each broken fixture spec fires its pass, at the right place.

The fixtures under ``tests/lint/specs/`` each plant one class of bug;
these tests assert the corresponding pass reports it with the expected
severity, source line, and (for the proof passes) witness word.
"""

import os

import pytest

from repro.lint import ERROR, INFO, WARN, LintConfig, run_lint

SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


def fixture(name):
    return os.path.join(SPEC_DIR, name + ".adl")


def lint_fixture(name, **config):
    return run_lint(fixture(name), config=LintConfig(**config))


def only(findings):
    assert len(findings) == 1, findings
    return findings[0]


def by_pass(report, pass_id):
    return [f for f in report.findings if f.pass_id == pass_id]


class TestAmbiguousFixture:
    def test_smt_ambiguity_fires_with_witness(self):
        report = lint_fixture("ambiguous")
        finding = only(by_pass(report, "smt-ambiguity"))
        assert finding.severity == ERROR
        assert "amb_a" in finding.message and "amb_b" in finding.message
        # Witness: op byte 0x10, a = b = 0 -> fetched word 0x0010.
        assert finding.witness == 0x0010
        assert finding.path.endswith("ambiguous.adl")
        assert finding.line > 0

    def test_unrelated_rule_not_flagged(self):
        report = lint_fixture("ambiguous")
        for finding in report.findings:
            assert finding.instruction != "unrelated"

    def test_witness_word_matches_both_patterns(self):
        report = lint_fixture("ambiguous")
        finding = only(by_pass(report, "smt-ambiguity"))
        from repro.adl import analyze, parse_spec
        with open(fixture("ambiguous")) as handle:
            spec = analyze(parse_spec(handle.read()),
                           check_ambiguity=False)
        patterns = {i.name: i.pattern for i in spec.instructions}
        assert patterns["amb_a"].matches(finding.witness)
        assert patterns["amb_b"].matches(finding.witness)

    def test_exit_state_is_error(self):
        report = lint_fixture("ambiguous")
        assert report.errors()


class TestDeadTempFixture:
    def test_dead_temporary(self):
        report = lint_fixture("dead_temp")
        findings = by_pass(report, "dead-assignment")
        dead = [f for f in findings if "dead temporary" in f.message]
        finding = only(dead)
        assert finding.severity == WARN
        assert finding.instruction == "dead"
        assert "'unused'" in finding.message
        assert finding.line == 18  # the `local unused:16 = ...` line

    def test_overwrite_before_read(self):
        report = lint_fixture("dead_temp")
        findings = by_pass(report, "dead-assignment")
        clobbers = [f for f in findings if "overwritten" in f.message]
        finding = only(clobbers)
        assert finding.instruction == "clobber"
        assert "'t'" in finding.message

    def test_no_errors_only_warnings(self):
        report = lint_fixture("dead_temp")
        assert not report.errors()
        assert report.by_severity()[WARN] == 2


class TestWidthMismatchFixture:
    def test_translation_rejects_narrow_store(self):
        report = lint_fixture("width_mismatch")
        finding = only(by_pass(report, "translation"))
        assert finding.severity == ERROR
        assert finding.instruction == "narrow"
        assert "width 8" in finding.message
        assert finding.line == 18

    def test_wide_load_warning(self):
        report = lint_fixture("width_mismatch")
        finding = only(by_pass(report, "ir-width"))
        assert finding.severity == WARN
        assert finding.instruction == "wide_load"
        assert "4 bytes" in finding.message

    def test_other_passes_still_ran(self):
        # Tolerant front end: translation failure of one rule must not
        # stop the spec-level passes.
        report = lint_fixture("width_mismatch")
        assert "smt-completeness" in report.passes_run
        assert by_pass(report, "smt-completeness")


class TestMissingPcFixture:
    def test_branch_without_branch(self):
        report = lint_fixture("missing_pc")
        finding = only(by_pass(report, "missing-pc-update"))
        assert finding.severity == ERROR
        assert finding.instruction == "bnop"
        assert "boff" in finding.message
        assert finding.line == 14

    def test_real_branch_unflagged(self):
        report = lint_fixture("missing_pc")
        assert all(f.instruction != "br" for f in report.findings)


class TestShadowedFixture:
    def test_mask_subsumption(self):
        report = lint_fixture("shadowed")
        findings = by_pass(report, "shadowed-rule")
        special = only([f for f in findings
                        if f.instruction == "special"])
        assert special.severity == ERROR
        assert "generic" in special.message
        assert special.witness == 0x10
        assert special.line == 25

    def test_shorter_rule_wins(self):
        report = lint_fixture("shadowed")
        findings = by_pass(report, "shadowed-rule")
        longform = only([f for f in findings
                         if f.instruction == "longform"])
        assert "shortform" in longform.message
        assert "1-byte" in longform.message
        assert longform.witness == 0x20

    def test_smt_ambiguity_defers_to_shadowed_rule(self):
        # Fully subsumed pairs are shadowed-rule's; the SMT pass must
        # not report them twice.
        report = lint_fixture("shadowed")
        assert not by_pass(report, "smt-ambiguity")

    def test_roundtrip_also_catches_the_steal(self):
        report = lint_fixture("shadowed")
        stolen = [f for f in by_pass(report, "smt-roundtrip")
                  if f.instruction == "longform"]
        finding = only(stolen)
        assert "shortform" in finding.message
        assert finding.witness == 0x20


class TestUseBeforeDefFixture:
    def test_partial_definition_flagged(self):
        report = lint_fixture("use_before_def")
        finding = only(by_pass(report, "use-before-def"))
        assert finding.severity == ERROR
        assert finding.instruction == "maybe"
        assert "'t'" in finding.message
        assert finding.line == 22  # the `r[a] = t;` read

    def test_both_paths_define_is_clean(self):
        report = lint_fixture("use_before_def")
        assert all(f.instruction != "bothpaths"
                   for f in by_pass(report, "use-before-def"))


class TestCleanFixture:
    def test_no_errors_or_warnings(self):
        report = lint_fixture("clean")
        counts = report.by_severity()
        assert counts[ERROR] == 0
        assert counts[WARN] == 0

    def test_info_observations_allowed(self):
        # Spare opcode space is an observation, not a defect.
        report = lint_fixture("clean")
        assert all(f.severity == INFO for f in report.findings)


@pytest.mark.parametrize("name", ["rv32", "mips32", "armlite", "pred32",
                                  "vlx"])
def test_shipped_specs_have_no_errors_or_warnings(name):
    report = run_lint(name)
    counts = report.by_severity()
    assert counts[ERROR] == 0, report.errors()
    assert counts[WARN] == 0, [f for f in report.findings
                               if f.severity == WARN]
