"""Pass framework, runner, baseline and rendering behaviour."""

import json
import os

import pytest

from repro.lint import (
    FAMILIES,
    SMT,
    STRUCTURAL,
    TRANSVAL,
    Baseline,
    Finding,
    LintConfig,
    LintError,
    all_passes,
    load_baseline,
    pass_by_id,
    render_json,
    render_sarif,
    render_text,
    run_lint,
    run_lint_all,
    write_baseline,
)
from repro.obs import Obs

SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


def fixture(name):
    return os.path.join(SPEC_DIR, name + ".adl")


class TestRegistry:
    def test_all_shipped_passes_registered(self):
        ids = [p.id for p in all_passes()]
        for expected in ("translation", "ir-width", "use-before-def",
                         "dead-assignment", "shadowed-rule",
                         "syntax-operands", "missing-pc-update",
                         "flag-completeness", "smt-ambiguity",
                         "smt-completeness", "smt-roundtrip",
                         "smt-obligations"):
            assert expected in ids

    def test_passes_grouped_in_family_order(self):
        families = [p.family for p in all_passes()]
        # structural, then smt, then transval — never interleaved.
        assert families == sorted(families, key=FAMILIES.index)
        assert families.index(SMT) > 0
        assert TRANSVAL in families

    def test_pass_by_id_unknown(self):
        with pytest.raises(KeyError):
            pass_by_id("no-such-pass")

    def test_unique_ids_and_titles(self):
        passes = all_passes()
        assert len({p.id for p in passes}) == len(passes)
        assert all(p.title for p in passes)


class TestConfig:
    def test_enable_restricts(self):
        config = LintConfig(enable=["dead-assignment"])
        report = run_lint(fixture("dead_temp"), config=config)
        assert report.passes_run == ["dead-assignment"]
        assert all(f.pass_id == "dead-assignment"
                   for f in report.findings)

    def test_disable_removes(self):
        config = LintConfig(disable=["smt-completeness"],
                            families=[STRUCTURAL, SMT])
        report = run_lint(fixture("clean"), config=config)
        assert "smt-completeness" not in report.passes_run
        assert not report.findings  # completeness was the only reporter

    def test_family_restricts(self):
        config = LintConfig(families=[TRANSVAL])
        report = run_lint(fixture("clean"), config=config)
        assert report.passes_run == ["transval-concrete",
                                     "transval-symbolic"]
        assert all(f.pass_id.startswith("transval-")
                   for f in report.findings)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            LintConfig(families=["bogus"]).selected_passes()

    def test_unknown_pass_id_raises(self):
        with pytest.raises(KeyError):
            LintConfig(enable=["bogus"]).selected_passes()
        with pytest.raises(KeyError):
            LintConfig(disable=["bogus"]).selected_passes()


class TestRunner:
    def test_builtin_name_resolves(self):
        report = run_lint("rv32")
        assert report.spec_name == "rv32"
        assert report.path.endswith("rv32.adl")

    def test_unknown_spec_raises_lint_error(self):
        with pytest.raises(LintError):
            run_lint("definitely-not-a-spec")

    def test_unparseable_file_raises_lint_error(self, tmp_path):
        bad = tmp_path / "bad.adl"
        bad.write_text("architecture broken {")
        with pytest.raises(LintError):
            run_lint(str(bad))

    def test_run_lint_all_covers_builtins(self):
        reports = run_lint_all()
        assert [r.spec_name for r in reports] == sorted(
            r.spec_name for r in reports)
        assert len(reports) == 5

    def test_findings_are_deterministic(self):
        first = run_lint(fixture("shadowed"))
        second = run_lint(fixture("shadowed"))
        strip = lambda report: [  # noqa: E731
            {k: v for k, v in f.to_dict().items()}
            for f in report.findings]
        assert strip(first) == strip(second)

    def test_timings_recorded_per_pass(self):
        report = run_lint(fixture("clean"))
        assert [t.pass_id for t in report.timings] == report.passes_run
        smt_timings = [t for t in report.timings
                       if t.pass_id.startswith("smt-")]
        assert any(t.solver_checks > 0 for t in smt_timings)

    def test_metrics_counters_emitted(self):
        obs = Obs(metrics=True, profile=True)
        report = run_lint(fixture("shadowed"), obs=obs)
        counters = obs.metrics.counters_snapshot()
        assert counters["lint.specs"] == 1
        assert counters["lint.findings.error"] == len(report.errors())
        assert counters["lint.passes_run"] == len(report.passes_run)
        assert counters["lint.solver.checks"] >= 1
        phases = obs.profiler.snapshot()
        assert any(name.startswith("lint.") for name in phases)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        report = run_lint(fixture("shadowed"))
        path = str(tmp_path / "baseline.json")
        write_baseline(path, report.findings)
        baseline = load_baseline(path)
        assert len(baseline) == len({f.fingerprint()
                                     for f in report.findings})
        kept, suppressed = baseline.split(report.findings)
        assert not kept
        assert len(suppressed) == len(report.findings)

    def test_fingerprint_survives_line_moves(self):
        a = Finding("p", "error", "msg", path="x/spec.adl", line=10,
                    instruction="add", witness=0x10)
        b = Finding("p", "error", "msg", path="y/spec.adl", line=99,
                    instruction="add", witness=0x20)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_message(self):
        a = Finding("p", "error", "msg", instruction="add")
        b = Finding("p", "error", "other msg", instruction="add")
        assert a.fingerprint() != b.fingerprint()

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a baseline"}))
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_new_finding_not_suppressed(self, tmp_path):
        report = run_lint(fixture("clean"))
        path = str(tmp_path / "baseline.json")
        write_baseline(path, report.findings)
        baseline = load_baseline(path)
        novel = Finding("translation", "error", "brand new",
                        path=fixture("clean"))
        assert not baseline.matches(novel)
        assert Baseline().matches(novel) is False


class TestRendering:
    def test_text_summary_line(self):
        report = run_lint(fixture("missing_pc"))
        text = render_text([report])
        assert "missing-pc-update" in text
        assert "1 error" in text
        assert text.strip().splitlines()[-1].startswith("lint:")

    def test_json_envelope(self):
        report = run_lint(fixture("shadowed"))
        data = json.loads(render_json([report]))
        assert data["format"] == "repro-lint"
        assert data["counts"]["error"] == len(report.errors())
        (entry,) = data["reports"]
        assert entry["spec"] == "shadowed"
        assert all("fingerprint" in f for f in entry["findings"])

    def test_sarif_minimal_shape(self):
        report = run_lint(fixture("shadowed"))
        data = json.loads(render_sarif([report]))
        assert data["version"] == "2.1.0"
        (run,) = data["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} >= {"shadowed-rule",
                                            "smt-ambiguity"}
        results = run["results"]
        assert len(results) == len(report.findings)
        for result in results:
            assert result["level"] in ("error", "warning", "note")
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]

    def test_sarif_suppressed_findings_marked(self):
        report = run_lint(fixture("missing_pc"))
        suppressed = list(report.findings)
        report.findings = []
        data = json.loads(render_sarif([report], suppressed))
        marked = [r for r in data["runs"][0]["results"]
                  if r.get("suppressions")]
        assert len(marked) == len(suppressed)

    def test_witness_rendered_as_hex(self):
        report = run_lint(fixture("shadowed"))
        entry = json.loads(render_json([report]))["reports"][0]
        witnesses = [f["witness"] for f in entry["findings"]
                     if "witness" in f]
        assert witnesses
        assert all(w.startswith("0x") for w in witnesses)
