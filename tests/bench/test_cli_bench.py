"""CLI surface of the performance observatory: ``repro bench
list/run/compare/history`` plus ``repro diffstats --json``.

All CLI runs use a synthetic benchmarks directory (one fast,
deterministic module) so the tests are hermetic and timing-free.
"""

import json

import pytest

from repro.cli import main

SYNTHETIC_MODULE = '''
from repro.bench import Sample, benchmark


@benchmark("syn.speedup", title="synthetic speedup", suite="quick",
           isas=("rv32",), unit="x", direction="higher",
           expect_min=1.5, reps=3, warmup=0,
           workload="deterministic synthetic samples")
def _speedup():
    return Sample(2.0, wall_s=0.001)


@benchmark("syn.wall", title="synthetic wall", suite="full",
           unit="s", direction="lower", reps=2, warmup=0,
           workload="more synthetic samples")
def _wall():
    return 0.25
'''

FAILING_MODULE = '''
from repro.bench import benchmark


@benchmark("syn.failing", suite="quick", unit="x", direction="higher",
           expect_min=100.0, reps=2, warmup=0)
def _failing():
    return 2.0
'''


@pytest.fixture
def bench_dir(tmp_path):
    directory = tmp_path / "benchmarks"
    directory.mkdir()
    (directory / "bench_synthetic.py").write_text(SYNTHETIC_MODULE)
    return str(directory)


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


def _run(bench_dir, store_dir, out, extra=()):
    return main(["bench", "run", "--suite", "quick", "--dir", bench_dir,
                 "--store", store_dir, "--out", out, "--quiet"]
                + list(extra))


class TestBenchList:
    def test_list_shows_registrations(self, bench_dir, capsys):
        assert main(["bench", "list", "--dir", bench_dir]) == 0
        out = capsys.readouterr().out
        assert "syn.speedup" in out and "syn.wall" in out
        assert ">= 1.5" in out

    def test_list_quick_filters(self, bench_dir, capsys):
        assert main(["bench", "list", "--dir", bench_dir,
                     "--suite", "quick"]) == 0
        out = capsys.readouterr().out
        assert "syn.speedup" in out and "syn.wall" not in out

    def test_list_json(self, bench_dir, capsys):
        assert main(["bench", "list", "--dir", bench_dir,
                     "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["id"] for row in rows} == {"syn.speedup", "syn.wall"}

    def test_missing_dir_is_error_not_traceback(self, tmp_path, capsys):
        assert main(["bench", "list", "--dir",
                     str(tmp_path / "absent")]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchRun:
    def test_run_writes_report_and_ledger(self, bench_dir, store_dir,
                                          tmp_path, capsys):
        out = str(tmp_path / "BENCH_A.json")
        assert _run(bench_dir, store_dir, out) == 0
        report = json.load(open(out))
        assert report["schema"] == "repro-bench/1"
        (result,) = report["results"]
        assert result["id"] == "syn.speedup"
        assert result["median"] == 2.0
        assert result["samples"][0]["wall_s"] == 0.001
        ledger_out = capsys.readouterr().out
        assert "ledger:" in ledger_out
        history = (tmp_path / "store" / "bench" /
                   "history.jsonl").read_text()
        assert "syn.speedup" in history

    def test_run_check_passes_met_expectations(self, bench_dir,
                                               store_dir, tmp_path):
        out = str(tmp_path / "BENCH_A.json")
        assert _run(bench_dir, store_dir, out, ["--check"]) == 0

    def test_run_check_fails_unmet_expectation(self, tmp_path, capsys):
        directory = tmp_path / "benchmarks"
        directory.mkdir()
        (directory / "bench_failing.py").write_text(FAILING_MODULE)
        out = str(tmp_path / "BENCH_A.json")
        assert main(["bench", "run", "--suite", "quick",
                     "--dir", str(directory), "--no-ledger",
                     "--out", out, "--quiet", "--check"]) == 3
        assert "FAIL" in capsys.readouterr().err

    def test_run_single_bench_selection(self, bench_dir, store_dir,
                                        tmp_path):
        out = str(tmp_path / "BENCH_A.json")
        assert main(["bench", "run", "--bench", "syn.wall",
                     "--dir", bench_dir, "--no-ledger",
                     "--out", out, "--quiet"]) == 0
        report = json.load(open(out))
        assert [r["id"] for r in report["results"]] == ["syn.wall"]

    def test_run_unknown_bench_is_error(self, bench_dir, capsys):
        assert main(["bench", "run", "--bench", "no.such",
                     "--dir", bench_dir, "--quiet",
                     "--no-ledger"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_json_emits_report_on_stdout(self, bench_dir, store_dir,
                                             tmp_path, capsys):
        out = str(tmp_path / "BENCH_A.json")
        assert _run(bench_dir, store_dir, out, ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-bench/1"


class TestBenchCompare:
    def _two_reports(self, bench_dir, store_dir, tmp_path):
        a = str(tmp_path / "BENCH_A.json")
        b = str(tmp_path / "BENCH_B.json")
        assert _run(bench_dir, store_dir, a) == 0
        assert _run(bench_dir, store_dir, b) == 0
        return a, b

    def test_identical_rerun_exits_zero(self, bench_dir, store_dir,
                                        tmp_path, capsys):
        a, b = self._two_reports(bench_dir, store_dir, tmp_path)
        assert main(["bench", "compare", a, b]) == 0
        assert "regressions: 0" in capsys.readouterr().out

    def test_injected_regression_exits_three(self, bench_dir, store_dir,
                                             tmp_path, capsys):
        a, b = self._two_reports(bench_dir, store_dir, tmp_path)
        report = json.load(open(b))
        for result in report["results"]:
            for sample in result["samples"]:
                sample["value"] *= 0.5
            result["median"] *= 0.5
        json.dump(report, open(b, "w"))
        assert main(["bench", "compare", a, b]) == 3
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_json_payload(self, bench_dir, store_dir, tmp_path,
                                  capsys):
        a, b = self._two_reports(bench_dir, store_dir, tmp_path)
        capsys.readouterr()     # drain the run output
        assert main(["bench", "compare", a, b, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 0
        assert payload["env_match"] is True

    def test_compare_unreadable_input_exits_one(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.json")
        assert main(["bench", "compare", missing, missing]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchHistory:
    def test_history_sparkline_and_table(self, bench_dir, store_dir,
                                         tmp_path, capsys):
        assert _run(bench_dir, store_dir,
                    str(tmp_path / "BENCH_A.json")) == 0
        assert main(["bench", "history", "syn.speedup",
                     "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "syn.speedup (1 entry" in out
        assert "▄" in out

    def test_history_json(self, bench_dir, store_dir, tmp_path, capsys):
        assert _run(bench_dir, store_dir,
                    str(tmp_path / "BENCH_A.json")) == 0
        capsys.readouterr()     # drain the run output
        assert main(["bench", "history", "syn.speedup",
                     "--store", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"] == "syn.speedup"
        assert payload["entries"][0]["median"] == 2.0
        assert payload["changepoint"] is None

    def test_history_unknown_bench_exits_one(self, store_dir, capsys):
        assert main(["bench", "history", "no.such",
                     "--store", store_dir]) == 1
        assert "no history" in capsys.readouterr().err


# -- repro diffstats --json ---------------------------------------------------

def _write_sidecar(path, rate):
    records = [{"kind": "meta", "record": "schema", "version": 3}]
    for seq in range(3):
        records.append({"kind": "health", "isa": "rv32", "state": -1,
                        "pc": 0, "ts": 0.1 * seq,
                        "data": {"sample": {"v": 1, "seq": seq,
                                            "t": 0.1 * seq,
                                            "steps_per_sec": rate,
                                            "frontier": 4,
                                            "solver": {"share": 0.2}}}})
    records.append({"kind": "meta", "record": "run_summary",
                    "paths": 2, "defects": 0, "instructions": 1000,
                    "wall_time": 1.0, "stop_reason": "exhausted",
                    "telemetry": {}})
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


class TestDiffstatsJson:
    def test_json_payload_matches_exit_logic(self, tmp_path, capsys):
        a = _write_sidecar(tmp_path / "a.jsonl", 1000.0)
        b = _write_sidecar(tmp_path / "b.jsonl", 700.0)
        assert main(["diffstats", a, b, "--json"]) == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] >= 1
        flags = {row["name"]: row["flag"] for row in payload["rows"]}
        assert flags["health.steps_per_sec.mean"] == "regression"

    def test_json_clean_run(self, tmp_path, capsys):
        a = _write_sidecar(tmp_path / "a.jsonl", 1000.0)
        assert main(["diffstats", a, a, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 0
        assert payload["baseline"] == a
