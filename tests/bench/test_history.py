"""Perf-history ledger: round trips, content-addressed dedup, and a
reader that survives corruption the same way every sidecar reader in
this repo does."""

import json

from repro.bench import (LEDGER_SCHEMA, Benchmark, PerfLedger,
                         entry_digest, env_digest, register,
                         run_benchmarks)


def _report():
    register(Benchmark("syn.a", lambda: 2.0, suite="quick", unit="x",
                       direction="higher", reps=3, warmup=0))
    register(Benchmark("syn.b", lambda: 0.5, suite="quick", unit="s",
                       direction="lower", reps=3, warmup=0))
    from repro.bench import all_benchmarks
    return run_benchmarks(all_benchmarks(), suite="quick")


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        ledger = PerfLedger(str(tmp_path))
        written = ledger.append_report(_report())
        assert len(written) == 2
        entries, warnings = ledger.entries()
        assert warnings == []
        assert sorted(e["bench"] for e in entries) == ["syn.a", "syn.b"]
        assert all(e["schema"] == LEDGER_SCHEMA for e in entries)
        assert ledger.series("syn.a") == [2.0]
        assert ledger.bench_ids() == ["syn.a", "syn.b"]

    def test_entry_carries_key_fields(self, tmp_path):
        ledger = PerfLedger(str(tmp_path))
        report = _report()
        ledger.append_report(report)
        entry = ledger.entries("syn.a")[0][0]
        assert entry["env_digest"] == report["env_digest"]
        assert entry["samples"] == [2.0, 2.0, 2.0]
        assert entry["digest"] == entry_digest(entry)

    def test_identical_report_dedups(self, tmp_path):
        ledger = PerfLedger(str(tmp_path))
        report = _report()
        assert len(ledger.append_report(report)) == 2
        assert ledger.append_report(report) == []
        assert len(ledger.entries()[0]) == 2

    def test_missing_file_is_empty_history(self, tmp_path):
        ledger = PerfLedger(str(tmp_path))
        assert ledger.entries() == ([], [])
        assert ledger.series("anything") == []


class TestReaderTolerance:
    def _seed(self, tmp_path):
        ledger = PerfLedger(str(tmp_path))
        ledger.append_report(_report())
        return ledger

    def test_unparseable_line_skipped_with_warning(self, tmp_path):
        ledger = self._seed(tmp_path)
        with open(ledger.path, "a") as handle:
            handle.write("{not json\n")
        entries, warnings = ledger.entries()
        assert len(entries) == 2
        assert len(warnings) == 1 and "unparseable" in warnings[0]

    def test_truncated_trailing_line_skipped(self, tmp_path):
        # The usual artifact of a killed writer.
        ledger = self._seed(tmp_path)
        with open(ledger.path, "a") as handle:
            handle.write('{"schema": "repro-bench/1", "bench": "tr')
        entries, warnings = ledger.entries()
        assert len(entries) == 2
        assert len(warnings) == 1

    def test_wrong_schema_skipped(self, tmp_path):
        ledger = self._seed(tmp_path)
        with open(ledger.path, "a") as handle:
            handle.write(json.dumps({"schema": "repro-bench/99",
                                     "bench": "future"}) + "\n")
        entries, warnings = ledger.entries()
        assert len(entries) == 2
        assert "unknown schema" in warnings[0]

    def test_tampered_entry_dropped(self, tmp_path):
        # Hand-editing a median breaks the content digest.
        ledger = self._seed(tmp_path)
        with open(ledger.path) as handle:
            lines = [line for line in handle.read().splitlines() if line]
        entry = json.loads(lines[0])
        entry["median"] = 99.0
        with open(ledger.path, "w") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.write(lines[1] + "\n")
        entries, warnings = ledger.entries()
        assert len(entries) == 1
        assert "digest mismatch" in warnings[0]

    def test_non_object_line_skipped(self, tmp_path):
        ledger = self._seed(tmp_path)
        with open(ledger.path, "a") as handle:
            handle.write("[1, 2, 3]\n\n")
        entries, warnings = ledger.entries()
        assert len(entries) == 2
        assert "non-object" in warnings[0]


class TestDigests:
    def test_env_digest_ignores_volatile_fields(self):
        env = {"python": "3.11.0", "implementation": "CPython",
               "platform": "linux", "machine": "x86_64",
               "package_version": "0.9"}
        base = env_digest(env)
        assert env_digest(dict(env, git_sha="deadbeef",
                               argv=["x"])) == base
        assert env_digest(dict(env, python="3.12.0")) != base

    def test_entry_digest_changes_with_content(self):
        entry = {"schema": LEDGER_SCHEMA, "bench": "syn.a",
                 "median": 2.0}
        assert entry_digest(entry) != entry_digest(
            dict(entry, median=2.1))
        # The digest field itself is excluded from the hash.
        stamped = dict(entry, digest=entry_digest(entry))
        assert entry_digest(stamped) == entry_digest(entry)
