"""Runner report schema, declarative expectations, and the statistical
report-vs-report comparison gate."""

import json

import pytest

from repro.bench import (REPORT_SCHEMA, BenchError, Benchmark, Sample,
                         all_benchmarks, benchmark, compare_reports,
                         default_report_path, evaluate_expectations,
                         get, load_report, render_comparison,
                         render_report, run_benchmarks, suite_benchmarks,
                         write_report)


def _register(value=2.0, expect_min=None, expect_max=None,
              bench_id="syn.a", direction="higher"):
    return Benchmark(bench_id, lambda: value, suite="quick", unit="x",
                     direction=direction, reps=3, warmup=0,
                     expect_min=expect_min, expect_max=expect_max)


class TestRegistry:
    def test_decorator_registers_and_get(self):
        @benchmark("syn.deco", suite="quick", unit="s",
                   direction="lower", reps=1, warmup=0)
        def _fn():
            return 1.0
        assert get("syn.deco").unit == "s"
        assert [b.id for b in suite_benchmarks("quick")] == ["syn.deco"]

    def test_unknown_bench_raises(self):
        with pytest.raises(BenchError):
            get("no.such.bench")

    def test_bad_metadata_rejected(self):
        with pytest.raises(BenchError):
            Benchmark("x", lambda: 1, suite="weekly")
        with pytest.raises(BenchError):
            Benchmark("x", lambda: 1, direction="sideways")
        with pytest.raises(BenchError):
            Benchmark("x", lambda: 1, reps=0)

    def test_sample_normalization(self):
        assert Sample.of(1.5).value == 1.5
        assert Sample.of(Sample(2.0, wall_s=0.1)).wall_s == 0.1
        rich = Sample.of({"value": 3.0, "wall_s": 0.2, "paths": 7})
        assert rich.wall_s == 0.2 and rich.extra == {"paths": 7}
        with pytest.raises(BenchError):
            Sample.of("fast")
        with pytest.raises(BenchError):
            Sample.of({"wall_s": 0.2})


class TestRunReport:
    def test_report_shape(self):
        from repro.bench import register
        register(_register(expect_min=1.0))
        report = run_benchmarks(all_benchmarks(), suite="quick")
        assert report["schema"] == REPORT_SCHEMA
        assert report["suite"] == "quick"
        assert report["env_digest"].startswith("sha256:")
        (result,) = report["results"]
        assert result["id"] == "syn.a"
        assert result["reps"] == 3
        assert result["median"] == 2.0 and result["mad"] == 0.0
        assert [s["value"] for s in result["samples"]] == [2.0] * 3
        (exp,) = result["expectations"]
        assert exp == {"kind": "min", "threshold": 1.0,
                       "observed": 2.0, "passed": True}

    def test_failed_expectation_recorded(self):
        from repro.bench import register
        register(_register(value=1.0, expect_min=5.0))
        report = run_benchmarks(all_benchmarks())
        (exp,) = report["results"][0]["expectations"]
        assert exp["passed"] is False
        assert "FAIL" in render_report(report)

    def test_reps_override(self):
        from repro.bench import register
        calls = []
        register(Benchmark("syn.count", lambda: calls.append(1) or 1.0,
                           reps=5, warmup=2))
        run_benchmarks(all_benchmarks(), reps=1, warmup=0)
        assert len(calls) == 1

    def test_evaluate_expectations_both_bounds(self):
        bench = _register(expect_min=1.0, expect_max=3.0)
        rows = evaluate_expectations(bench, 2.0)
        assert [r["passed"] for r in rows] == [True, True]
        rows = evaluate_expectations(bench, 4.0)
        assert [r["passed"] for r in rows] == [True, False]

    def test_write_load_round_trip(self, tmp_path):
        from repro.bench import register
        register(_register())
        report = run_benchmarks(all_benchmarks())
        path = str(tmp_path / "BENCH_test.json")
        write_report(report, path)
        assert load_report(path)["results"][0]["median"] == 2.0

    def test_load_report_rejects_garbage(self, tmp_path):
        missing = str(tmp_path / "absent.json")
        with pytest.raises(BenchError):
            load_report(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchError):
            load_report(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "repro-bench/99",
                                     "results": []}))
        with pytest.raises(BenchError):
            load_report(str(wrong))

    def test_default_report_path_basename(self):
        assert default_report_path().endswith("BENCH_9.json")


def _report_with(values, direction="higher", expect_min=None,
                 bench_id="syn.a"):
    from repro.bench import clear_registry, register
    clear_registry()
    series = list(values)
    register(Benchmark(bench_id, lambda: series.pop(0), suite="quick",
                       unit="x", direction=direction, reps=len(values),
                       warmup=0, expect_min=expect_min))
    return run_benchmarks(all_benchmarks())


class TestCompareReports:
    def test_identical_reports_clean(self):
        report = _report_with([2.0, 2.1, 1.95])
        comparison = compare_reports(report, report)
        assert comparison.regressions == []
        assert comparison.env_match is True
        assert "REGRESSION" not in render_comparison(comparison)

    def test_injected_regression_flagged(self):
        base = _report_with([2.0, 2.1, 1.95])
        bad = _report_with([1.0, 1.05, 0.98])    # throughput halved
        comparison = compare_reports(base, bad)
        (row,) = comparison.regressions
        assert row.bench_id == "syn.a"
        assert row.verdict.worse_ratio > 0.4
        assert "REGRESSION" in render_comparison(comparison)

    def test_improvement_is_not_a_regression(self):
        base = _report_with([2.0, 2.1, 1.95])
        better = _report_with([4.0, 4.1, 3.9])
        comparison = compare_reports(base, better)
        assert comparison.regressions == []
        assert len(comparison.improvements) == 1

    def test_noise_within_band_is_ok(self):
        base = _report_with([2.0, 2.05, 1.95])
        wiggle = _report_with([1.98, 2.02, 2.01])
        assert compare_reports(base, wiggle).regressions == []

    def test_failed_expectation_gates_even_without_band_move(self):
        # The migrated CI guards: an absolute floor that fails in B
        # must gate even if A and B are statistically identical.
        base = _report_with([2.0, 2.0, 2.0])
        candidate = _report_with([2.0, 2.0, 2.0], expect_min=5.0)
        comparison = compare_reports(base, candidate)
        (row,) = comparison.regressions
        assert row.flag == "regression"
        assert row.verdict.flag == "ok"

    def test_unmatched_benchmark_reported_not_fatal(self):
        base = _report_with([2.0, 2.0, 2.0], bench_id="syn.old")
        candidate = _report_with([2.0, 2.0, 2.0], bench_id="syn.new")
        comparison = compare_reports(base, candidate)
        flags = {row.bench_id: row.flag for row in comparison.rows}
        assert flags["syn.old"] == "unmatched"
        assert flags["syn.new"] == "unmatched"
        assert comparison.regressions == []

    def test_direction_lower_is_better(self):
        base = _report_with([1.0, 1.0, 1.0], direction="lower")
        slower = _report_with([1.5, 1.5, 1.5], direction="lower")
        assert len(compare_reports(base, slower).regressions) == 1
        assert compare_reports(slower, base).regressions == []

    def test_to_dict_payload(self):
        base = _report_with([2.0, 2.0, 2.0])
        payload = compare_reports(base, base).to_dict()
        assert payload["regressions"] == 0
        assert payload["rows"][0]["flag"] == "ok"
