"""Robust statistics of the observatory: bands, verdicts, changepoints.

Every series here is synthetic and deterministic — the point of the
median/MAD machinery is that these assertions hold regardless of the
machine running them.
"""

import pytest

from repro.bench import (Band, changepoint, classify, mad, median,
                         noise_band, sparkline)

STEADY = [10.0] * 8
NOISY_FLAT = [10.0, 10.2, 9.9, 10.1, 9.8, 10.05, 10.1, 9.95]
STEP = [10.0] * 6 + [13.0] * 6
DRIFT = [10.0 + 0.02 * i for i in range(12)]    # +2.2% end to end


class TestMedianMad:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_single_sample_is_zero(self):
        assert mad([42.0]) == 0.0

    def test_mad_robust_to_one_outlier(self):
        # One GC pause must not blow up the spread estimate.
        assert mad([10.0, 10.1, 9.9, 10.0, 50.0]) <= 0.1


class TestNoiseBand:
    def test_zero_spread_gets_relative_floor(self):
        band = noise_band(STEADY)
        assert band.radius == pytest.approx(0.5)    # 5% of 10
        assert band.contains(10.4)
        assert not band.contains(10.6)

    def test_min_abs_floor(self):
        band = noise_band([0.001] * 5, min_abs=0.01)
        assert band.radius == 0.01

    def test_band_bounds(self):
        band = Band(10.0, 1.0)
        assert band.lo == 9.0 and band.hi == 11.0
        assert band.to_dict()["center"] == 10.0


class TestClassify:
    def test_steady_identical_is_ok(self):
        assert classify(STEADY, STEADY, "lower").flag == "ok"

    def test_noisy_but_flat_is_ok(self):
        # Jitter within the band must never flag (no flapping gates).
        assert classify(NOISY_FLAT, list(reversed(NOISY_FLAT)),
                        "lower").flag == "ok"

    def test_step_regression_lower_is_better(self):
        verdict = classify(STEADY, [13.0] * 3, "lower")
        assert verdict.flag == "regression"
        assert verdict.worse_ratio == pytest.approx(0.3)

    def test_direction_awareness(self):
        # Throughput drop = regression; throughput rise = improvement.
        assert classify(STEADY, [7.0] * 3, "higher").flag == "regression"
        assert classify(STEADY, [13.0] * 3, "higher").flag == "improvement"
        assert classify(STEADY, [7.0] * 3, "lower").flag == "improvement"

    def test_tiny_n_single_samples(self):
        # n=1 on both sides: MAD is 0, the relative floor still guards.
        assert classify([10.0], [10.3], "lower").flag == "ok"
        assert classify([10.0], [12.0], "lower").flag == "regression"

    def test_zero_baseline_never_flags(self):
        assert classify([0.0, 0.0, 0.0], [5.0], "lower").flag == "ok"

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            classify(STEADY, STEADY, "sideways")

    def test_verdict_to_dict(self):
        row = classify(STEADY, [13.0] * 3, "lower").to_dict()
        assert row["flag"] == "regression"
        assert row["band"]["center"] == 10.0


class TestChangepoint:
    def test_flat_series_none(self):
        assert changepoint(STEADY) is None

    def test_noisy_flat_none(self):
        assert changepoint(NOISY_FLAT) is None

    def test_step_detected(self):
        shift = changepoint(STEP)
        assert shift is not None
        assert shift.index == 6
        assert shift.shift_ratio == pytest.approx(0.3)

    def test_gradual_drift_within_band_none(self):
        assert changepoint(DRIFT) is None

    def test_short_series_none(self):
        assert changepoint([10.0, 13.0, 13.0, 13.0, 13.0]) is None

    def test_downward_step(self):
        shift = changepoint([10.0] * 5 + [6.0] * 5)
        assert shift is not None
        assert shift.shift_ratio == pytest.approx(-0.4)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_is_mid_blocks(self):
        assert sparkline([5.0] * 4) == "▄▄▄▄"

    def test_range_and_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] == "▁" and line[-1] == "█"
