"""Shared fixtures for the performance-observatory tests.

The benchmark registry is process-global and discovery caches imported
``bench_*`` modules in ``sys.modules``; both must be reset around every
test so a synthetic registration from one test cannot leak into the
suite selection of the next.
"""

import sys

import pytest

from repro.bench import clear_registry


def _drop_bench_modules():
    for name in [name for name in sys.modules
                 if name.startswith("repro_benchmarks.")]:
        del sys.modules[name]


@pytest.fixture(autouse=True)
def clean_bench_state():
    clear_registry()
    _drop_bench_modules()
    yield
    clear_registry()
    _drop_bench_modules()
