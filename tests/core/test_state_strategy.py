"""Unit tests for SymState and the exploration strategies."""

import pytest

from repro.core.memory import MemoryMap, Region, SymMemory
from repro.core.state import SymState
from repro.core.strategy import (
    BfsStrategy,
    CoverageStrategy,
    DfsStrategy,
    RandomStrategy,
    make_strategy,
)
from repro.isa import build
from repro.smt import terms as T


def make_state(target="rv32"):
    model = build(target)
    memory = SymMemory(MemoryMap([Region(0, 0x10000)]))
    return SymState(model, memory)


class TestSymState:
    def test_registers_start_zero(self):
        state = make_state()
        assert state.read_reg("x", 5).value == 0

    def test_zero_register(self):
        state = make_state()
        state.write_reg("x", 0, T.bv(99, 32))
        assert state.read_reg("x", 0).value == 0

    def test_write_read(self):
        state = make_state()
        state.write_reg("x", 3, T.bv(7, 32))
        assert state.read_reg("x", 3).value == 7

    def test_width_checked(self):
        state = make_state()
        with pytest.raises(T.WidthError):
            state.write_reg("x", 3, T.bv(7, 16))

    def test_index_bounds(self):
        state = make_state()
        with pytest.raises(IndexError):
            state.read_reg("x", 32)
        with pytest.raises(IndexError):
            state.write_reg("x", -1, T.bv(0, 32))

    def test_single_registers(self):
        state = make_state("armlite")
        state.write_reg("Z", None, T.bv(1, 1))
        assert state.read_reg("Z", None).value == 1

    def test_fork_isolates_registers(self):
        state = make_state()
        state.write_reg("x", 1, T.bv(1, 32))
        child = state.fork()
        child.write_reg("x", 1, T.bv(2, 32))
        assert state.read_reg("x", 1).value == 1
        assert child.parent_id == state.state_id

    def test_fork_isolates_path_condition(self):
        state = make_state()
        child = state.fork()
        child.assume(T.eq(T.var("st_v", 8), T.bv(1, 8)))
        assert len(state.path_condition) == 0
        assert len(child.path_condition) == 1

    def test_assume_drops_trivial_true(self):
        state = make_state()
        state.assume(T.TRUE)
        assert state.path_condition == []

    def test_input_naming_is_positional(self):
        state = make_state()
        first = state.next_input()
        child = state.fork()
        second_parent = state.next_input()
        second_child = child.next_input()
        assert first.name == "in_0"
        # Position 1 has the same name on both paths (same stream index).
        assert second_parent.name == second_child.name == "in_1"

    def test_input_bytes_from_model(self):
        state = make_state()
        state.next_input()
        state.next_input()
        assert state.input_bytes_from_model({"in_0": 0x41}) == b"A\x00"


class TestStrategies:
    def _states(self, count):
        return [make_state() for _ in range(count)]

    def test_dfs_lifo(self):
        strategy = DfsStrategy()
        a, b = self._states(2)
        strategy.push(a)
        strategy.push(b)
        assert strategy.pop() is b
        assert strategy.pop() is a

    def test_bfs_fifo(self):
        strategy = BfsStrategy()
        a, b = self._states(2)
        strategy.push(a)
        strategy.push(b)
        assert strategy.pop() is a

    def test_random_seeded_deterministic(self):
        order = []
        for _ in range(2):
            strategy = RandomStrategy(seed=42)
            states = self._states(5)
            index_of = {s.state_id: i for i, s in enumerate(states)}
            for state in states:
                strategy.push(state)
            order.append([index_of[strategy.pop().state_id]
                          for _ in range(5)])
        assert order[0] == order[1]

    def test_random_pops_everything(self):
        strategy = RandomStrategy(seed=1)
        states = self._states(4)
        for state in states:
            strategy.push(state)
        popped = {strategy.pop().state_id for _ in range(4)}
        assert popped == {s.state_id for s in states}

    def test_coverage_prefers_unvisited(self):
        strategy = CoverageStrategy()
        hot, cold = self._states(2)
        hot.pc, cold.pc = 0x1000, 0x2000
        for _ in range(5):
            strategy.visit(0x1000)
        strategy.push(hot)
        strategy.push(cold)
        assert strategy.pop() is cold

    def test_coverage_fifo_tiebreak(self):
        strategy = CoverageStrategy()
        a, b = self._states(2)
        a.pc = b.pc = 0x1000
        strategy.push(a)
        strategy.push(b)
        assert strategy.pop() is a

    def test_len_and_bool(self):
        strategy = DfsStrategy()
        assert not strategy
        strategy.push(make_state())
        assert len(strategy) == 1 and strategy

    def test_make_strategy(self):
        assert isinstance(make_strategy("dfs"), DfsStrategy)
        assert isinstance(make_strategy("bfs"), BfsStrategy)
        assert isinstance(make_strategy("random", seed=3), RandomStrategy)
        assert isinstance(make_strategy("coverage"), CoverageStrategy)
        with pytest.raises(ValueError):
            make_strategy("magic")
