"""Unit tests for defect/path reporting containers."""

from repro.core.reporting import (
    DIV_BY_ZERO,
    TRAP,
    Defect,
    ExplorationResult,
    PathResult,
)


def make_defect(kind=TRAP, pc=0x1000):
    return Defect(kind, pc, "trap", "msg", b"\x01", {"in_0": 1}, 7, 3)


class TestDefect:
    def test_fields(self):
        defect = make_defect()
        assert defect.kind == TRAP
        assert defect.pc == 0x1000
        assert defect.input_bytes == b"\x01"

    def test_repr(self):
        assert "reachable-trap" in repr(make_defect())


class TestExplorationResult:
    def test_defects_by_kind(self):
        result = ExplorationResult()
        result.defects.append(make_defect(TRAP))
        result.defects.append(make_defect(DIV_BY_ZERO))
        result.defects.append(make_defect(TRAP, pc=0x2000))
        grouped = result.defects_by_kind()
        assert len(grouped[TRAP]) == 2
        assert len(grouped[DIV_BY_ZERO]) == 1

    def test_first_defect_filters(self):
        result = ExplorationResult()
        result.defects.append(make_defect(DIV_BY_ZERO))
        result.defects.append(make_defect(TRAP))
        assert result.first_defect().kind == DIV_BY_ZERO
        assert result.first_defect(TRAP).kind == TRAP
        assert result.first_defect("nothing") is None

    def test_summary_is_one_line_with_counts(self):
        result = ExplorationResult()
        result.defects.append(make_defect())
        result.paths.append(PathResult("halted", None, b"", 0))
        result.solver_stats = {"checks": 12}
        text = result.summary()
        assert "\n" not in text
        assert "paths=1" in text
        assert "defects=1" in text
        assert "solver_checks=12" in text

    def test_details_mentions_defects(self):
        result = ExplorationResult()
        result.defects.append(make_defect())
        result.paths.append(PathResult("halted", None, b"", 0))
        text = result.details()
        assert "paths=1" in text
        assert "reachable-trap" in text

    def test_path_result_repr(self):
        path = PathResult("halted", None, b"ab", 3)
        assert "halted" in repr(path)
