"""Unit tests for defect/path reporting containers."""

from repro.core.reporting import (
    DIV_BY_ZERO,
    TRAP,
    Defect,
    ExplorationResult,
    PathResult,
)


def make_defect(kind=TRAP, pc=0x1000):
    return Defect(kind, pc, "trap", "msg", b"\x01", {"in_0": 1}, 7, 3)


class TestDefect:
    def test_fields(self):
        defect = make_defect()
        assert defect.kind == TRAP
        assert defect.pc == 0x1000
        assert defect.input_bytes == b"\x01"

    def test_repr(self):
        assert "reachable-trap" in repr(make_defect())


class TestExplorationResult:
    def test_defects_by_kind(self):
        result = ExplorationResult()
        result.defects.append(make_defect(TRAP))
        result.defects.append(make_defect(DIV_BY_ZERO))
        result.defects.append(make_defect(TRAP, pc=0x2000))
        grouped = result.defects_by_kind()
        assert len(grouped[TRAP]) == 2
        assert len(grouped[DIV_BY_ZERO]) == 1

    def test_first_defect_filters(self):
        result = ExplorationResult()
        result.defects.append(make_defect(DIV_BY_ZERO))
        result.defects.append(make_defect(TRAP))
        assert result.first_defect().kind == DIV_BY_ZERO
        assert result.first_defect(TRAP).kind == TRAP
        assert result.first_defect("nothing") is None

    def test_summary_is_one_line_with_counts(self):
        result = ExplorationResult()
        result.defects.append(make_defect())
        result.paths.append(PathResult("halted", None, b"", 0))
        result.solver_stats = {"checks": 12}
        text = result.summary()
        assert "\n" not in text
        assert "paths=1" in text
        assert "defects=1" in text
        assert "solver_checks=12" in text

    def test_details_mentions_defects(self):
        result = ExplorationResult()
        result.defects.append(make_defect())
        result.paths.append(PathResult("halted", None, b"", 0))
        text = result.details()
        assert "paths=1" in text
        assert "reachable-trap" in text

    def test_path_result_repr(self):
        path = PathResult("halted", None, b"ab", 3)
        assert "halted" in repr(path)


class TestSolverCacheLine:
    def test_no_line_when_cache_never_fired(self):
        result = ExplorationResult()
        result.solver_stats = {"checks": 5}
        assert result.solver_cache_line() is None
        assert "solver cache:" not in result.details()

    def test_line_summarizes_cache_traffic(self):
        result = ExplorationResult()
        result.solver_stats = {
            "checks": 10, "cache_hit_sat": 3, "cache_hit_unsat": 1,
            "cache_model_reuse": 2, "cache_subsumed_unsat": 1,
            "cache_misses": 3, "frame_reuse": 4,
        }
        line = result.solver_cache_line()
        assert line is not None
        assert "hits=4" in line
        assert "model_reuse=2" in line
        assert "subsumed=1" in line
        assert "misses=3" in line
        assert "frame_reuse=4" in line
        assert "hit_ratio=0.70" in line       # (4+2+1) / (4+2+1+3)
        assert line in result.details()

    def test_shared_summary_helper_matches_method(self):
        from repro.core.reporting import solver_cache_summary
        stats = {"cache_hit_sat": 2, "cache_misses": 2}
        result = ExplorationResult()
        result.solver_stats = dict(stats)
        assert solver_cache_summary(stats) == result.solver_cache_line()
        assert solver_cache_summary(None) is None
        assert solver_cache_summary({}) is None


class TestCacheDeltaAccounting:
    """Per-exploration solver_stats deltas with the cache active.

    Cached answers and frame reuse must not inflate the *solver work*
    counters of an exploration: a second identical exploration on one
    engine re-asks the same queries, so its delta shows cache traffic
    — not fresh sat_calls.
    """

    def test_second_exploration_delta_shows_hits_not_solves(self):
        from repro.isa import build
        from repro.programs import build_kernel
        from repro.core import Engine, EngineConfig

        model, image = build_kernel("password", "rv32")
        engine = Engine(model, config=EngineConfig())
        engine.load_image(image)
        first = engine.explore()
        second = engine.explore()
        # Identical outcome both times.
        assert len(second.paths) == len(first.paths)
        assert len(second.defects) == len(first.defects)
        # The rerun's delta is dominated by cache answers: it performed
        # checks, but strictly fewer SAT-core calls than the first run.
        assert second.solver_stats["checks"] > 0
        hits = (second.solver_stats["cache_hit_sat"]
                + second.solver_stats["cache_hit_unsat"]
                + second.solver_stats["cache_model_reuse"]
                + second.solver_stats["cache_subsumed_unsat"])
        assert hits > 0
        assert second.solver_stats["sat_calls"] \
            < first.solver_stats["sat_calls"] or \
            first.solver_stats["sat_calls"] == 0
        # Deltas are per-exploration, not cumulative: the second run's
        # cache hits were not already present in the first delta.
        assert first.solver_stats["cache_hit_sat"] \
            <= second.solver_stats["cache_hit_sat"] + \
            first.solver_stats["cache_misses"]

    def test_cache_off_delta_has_zero_cache_fields(self):
        from repro.programs import build_kernel
        from repro.core import Engine, EngineConfig

        model, image = build_kernel("password", "rv32")
        engine = Engine(model,
                        config=EngineConfig(use_solver_cache=False))
        engine.load_image(image)
        result = engine.explore()
        stats = result.solver_stats
        assert stats["cache_hit_sat"] == 0
        assert stats["cache_hit_unsat"] == 0
        assert stats["cache_model_reuse"] == 0
        assert stats["cache_subsumed_unsat"] == 0
        assert stats["cache_misses"] == 0
        assert stats["frame_reuse"] == 0
        assert result.solver_cache_line() is None
