"""Engine-level tests: forking, checkers, concretization, limits."""

import pytest

from repro import core
from repro.core import Engine, EngineConfig, EngineError
from repro.isa import assemble, build, run_image


def engine_for(target, source, config=None, strategy="dfs", regions=()):
    model = build(target)
    image = assemble(model, source, base=0x1000)
    engine = Engine(model, config=config, strategy=strategy)
    engine.load_image(image)
    for region in regions:
        engine.add_region(**region)
    return engine, image, model


class TestBasicExploration:
    def test_straight_line_single_path(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        addi x1, x0, 1
        addi x2, x1, 2
        halt 0
        """)
        result = engine.explore()
        assert len(result.paths) == 1
        assert result.paths[0].status == "halted"
        assert result.paths[0].exit_code == 0
        assert result.instructions_executed == 3

    def test_no_image_rejected(self):
        with pytest.raises(EngineError):
            Engine(build("rv32")).initial_state()

    def test_concrete_branch_does_not_fork(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        addi x1, x0, 1
        beq x1, x0, never
        halt 0
        never: trap 1
        """)
        result = engine.explore()
        assert len(result.paths) == 1
        assert result.states_forked == 0
        assert not result.defects

    def test_symbolic_branch_forks_two_paths(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        inb x1
        beq x1, x0, a
        halt 1
        a: halt 2
        """)
        result = engine.explore()
        assert len(result.paths) == 2
        assert {p.exit_code for p in result.paths} == {1, 2}

    def test_path_inputs_satisfy_path(self):
        engine, image, model = engine_for("rv32", """
        .org 0x1000
        inb x1
        addi x2, x0, 77
        bne x1, x2, no
        halt 1
        no: halt 0
        """)
        result = engine.explore()
        by_code = {p.exit_code: p for p in result.paths}
        sim = run_image(model, image, input_bytes=by_code[1].input_bytes)
        assert sim.exit_code == 1
        assert by_code[1].input_bytes[0] == 77

    def test_infeasible_branch_not_explored(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        inb x1
        andi x2, x1, 1
        addi x3, x0, 2
        beq x2, x3, impossible    # (x & 1) == 2 is unsat
        halt 0
        impossible: trap 1
        """)
        result = engine.explore()
        assert len(result.paths) == 1
        assert not result.defects


class TestTrapAndHalt:
    def test_trap_reported_with_input(self):
        engine, image, model = engine_for("rv32", """
        .org 0x1000
        inb x1
        addi x2, x0, 5
        bne x1, x2, ok
        trap 3
        ok: halt 0
        """)
        result = engine.explore()
        defect = result.first_defect(core.TRAP)
        assert defect is not None
        assert defect.input_bytes[0] == 5
        sim = run_image(model, image, input_bytes=defect.input_bytes)
        assert sim.trapped and sim.trap_code == 3

    def test_exit_codes_collected(self):
        engine, _, _ = engine_for("rv32", ".org 0x1000\nhalt 9")
        result = engine.explore()
        assert result.paths[0].exit_code == 9


class TestLimits:
    def test_depth_limit(self):
        config = EngineConfig(max_steps_per_path=5)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        loop: jal x0, loop
        """, config=config)
        result = engine.explore()
        assert result.paths[0].status == "depth-limit"

    def test_max_paths(self):
        config = EngineConfig(max_paths=2)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        inb x1
        beq x1, x0, a
        inb x2
        beq x2, x0, a
        halt 1
        a: halt 0
        """, config=config)
        result = engine.explore()
        assert len(result.paths) == 2
        assert result.stop_reason == "max-paths"

    def test_max_instructions(self):
        config = EngineConfig(max_instructions=3)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        loop: jal x0, loop
        """, config=config)
        result = engine.explore()
        assert result.instructions_executed == 3
        assert result.stop_reason == "max-instructions"

    def test_max_defects(self):
        config = EngineConfig(max_defects=1)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        inb x1
        beq x1, x0, a
        trap 1
        a: trap 2
        """, config=config)
        result = engine.explore()
        assert len(result.defects) == 1
        assert result.stop_reason == "max-defects"


class TestIndirectJumps:
    def test_concrete_jalr(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        start:
            jal x1, fn
            halt 0
        fn:
            jalr x0, 0(x1)
        .entry start
        """)
        result = engine.explore()
        assert result.paths[0].status == "halted"

    def test_symbolic_target_enumerated(self):
        # Jump table: target = 0x1000 + 16 + 4*(x1 & 1)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        start:
            inb x1
            andi x1, x1, 1
            slli x1, x1, 2
            addi x2, x0, 0x110
            slli x2, x2, 4      # 0x1100
            add x2, x2, x1
            jalr x0, 0(x2)
        .org 0x1100
            halt 1
            halt 2
        .entry start
        """)
        result = engine.explore()
        assert {p.exit_code for p in result.paths} == {1, 2}
        assert result.states_forked >= 1


class TestCheckers:
    def test_invalid_instruction_defect(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        jal x0, data
        data: .word 0xffffffff
        """)
        result = engine.explore()
        assert result.first_defect(core.INVALID_INSTRUCTION) is not None

    def test_oob_concrete_address(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        lui x1, 0x9
        lw x2, 0(x1)       # 0x9000: unmapped
        halt 0
        """)
        result = engine.explore()
        defect = result.first_defect(core.OOB_ACCESS)
        assert defect is not None
        assert not result.paths    # the path could not continue

    def test_oob_symbolic_constrained_and_continues(self):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        inb x1
        lui x2, 1
        add x2, x2, x1     # 0x1000 + in: partially in-bounds
        lbu x3, 0(x2)
        halt 0
        .org 0x10f0
        .space 8
        """)
        result = engine.explore()
        # OOB reported (input can push past 0x10f8) AND the in-bounds
        # continuation still reaches halt.
        assert result.first_defect(core.OOB_ACCESS) is not None
        assert any(p.status == "halted" for p in result.paths)

    def test_write_protect(self):
        model = build("rv32")
        image = assemble(model, """
        .org 0x1000
        lui x1, 1
        addi x2, x0, 7
        sw x2, 0(x1)       # write into the read-only image
        halt 0
        """, base=0x1000)
        engine = Engine(model)
        engine.load_image(image, writable=False)
        result = engine.explore()
        assert result.first_defect(core.WRITE_TO_CODE) is not None

    def test_uninit_read_checker(self):
        config = EngineConfig(check_uninit=True)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        lui x1, 2
        lbu x2, 0(x1)      # scratch region, never written
        halt 0
        """, config=config,
            regions=[{"start": 0x2000, "size": 16, "track_uninit": True}])
        result = engine.explore()
        assert result.first_defect(core.UNINIT_READ) is not None

    def test_uninit_ok_after_write(self):
        config = EngineConfig(check_uninit=True)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        lui x1, 2
        addi x2, x0, 5
        sb x2, 0(x1)
        lbu x3, 0(x1)
        halt 0
        """, config=config,
            regions=[{"start": 0x2000, "size": 16, "track_uninit": True}])
        result = engine.explore()
        assert result.first_defect(core.UNINIT_READ) is None

    def test_defect_dedup(self):
        # The same div site in a loop is reported once.
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        addi x4, x0, 3
        loop:
        inb x1
        addi x2, x0, 9
        divu x3, x2, x1
        addi x4, x4, -1
        bne x4, x0, loop
        halt 0
        """)
        result = engine.explore()
        div_defects = [d for d in result.defects
                       if d.kind == core.DIV_BY_ZERO]
        assert len(div_defects) == 1

    def test_dedup_disabled_reports_again(self):
        config = EngineConfig(dedup_defects=False, max_defects=4)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        addi x4, x0, 3
        loop:
        inb x1
        addi x2, x0, 9
        divu x3, x2, x1
        addi x4, x4, -1
        bne x4, x0, loop
        halt 0
        """, config=config)
        result = engine.explore()
        div_defects = [d for d in result.defects
                       if d.kind == core.DIV_BY_ZERO]
        assert len(div_defects) > 1


class TestSymbolicMemoryAccess:
    def test_symbolic_load_window(self):
        # Small symbolic range -> ite chain over the table.
        engine, image, model = engine_for("rv32", """
        .org 0x1000
        start:
            inb x1
            andi x1, x1, 3       # index 0..3
            lui x2, 1
            addi x2, x2, 0x200   # 0x1200 table
            add x2, x2, x1
            lbu x3, 0(x2)
            addi x4, x0, 30
            bne x3, x4, no
            trap 1
        no: halt 0
        .org 0x1200
        .byte 10, 20, 30, 40
        .entry start
        """)
        result = engine.explore()
        defect = result.first_defect(core.TRAP)
        assert defect is not None
        assert defect.input_bytes[0] & 3 == 2   # table[2] == 30
        sim = run_image(model, image, input_bytes=defect.input_bytes)
        assert sim.trapped

    def test_symbolic_store_then_load(self):
        engine, image, model = engine_for("rv32", """
        .org 0x1000
        start:
            inb x1
            andi x1, x1, 7
            lui x2, 1
            addi x2, x2, 0x200
            add x3, x2, x1
            addi x4, x0, 55
            sb x4, 0(x3)        # buf[in & 7] = 55
            lbu x5, 0(x3)       # read it back
            addi x6, x0, 55
            bne x5, x6, bad
            halt 0
        bad: trap 9
        .org 0x1200
        .space 8
        .entry start
        """)
        result = engine.explore()
        # Reading back the stored value must always succeed.
        assert result.first_defect(core.TRAP) is None
        assert any(p.status == "halted" for p in result.paths)


class TestStrategySelection:
    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "random",
                                          "coverage"])
    def test_all_strategies_find_all_paths(self, strategy):
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        inb x1
        beq x1, x0, a
        inb x2
        beq x2, x0, a
        halt 1
        a: halt 0
        """, strategy=strategy)
        result = engine.explore()
        assert len(result.paths) == 3

    def test_state_cap_prunes(self):
        config = EngineConfig(max_states=1)
        engine, _, _ = engine_for("rv32", """
        .org 0x1000
        inb x1
        beq x1, x0, a
        inb x2
        beq x2, x0, a
        halt 1
        a: halt 0
        """, config=config)
        result = engine.explore()
        assert result.states_pruned >= 1
