"""Tests for opportunistic state merging."""

import pytest

from repro import core
from repro.core import Engine, EngineConfig
from repro.core.memory import MemoryMap, Region, SymMemory
from repro.core.merge import MergingFrontier, try_merge
from repro.core.state import SymState
from repro.core.strategy import BfsStrategy
from repro.isa import assemble, build, run_image
from repro.programs import build_kernel
from repro.smt import terms as T


def make_state(pc=0x1000):
    model = build("rv32")
    memory = SymMemory(MemoryMap([Region(0, 0x10000)]))
    state = SymState(model, memory)
    state.pc = pc
    return state


def sibling_pair():
    """A forked pair that took complementary branches and re-joined."""
    parent = make_state()
    cond = T.eq(T.var("mg_in", 8), T.bv(0, 8))
    left = parent.fork()
    left.assume(cond)
    left.write_reg("x", 5, T.bv(1, 32))
    right = parent.fork()
    right.assume(T.not_(cond))
    right.write_reg("x", 5, T.bv(2, 32))
    return left, right, cond


class TestTryMerge:
    def test_merges_register_difference_into_ite(self):
        left, right, cond = sibling_pair()
        merged = try_merge(left, right)
        assert merged is not None
        reg = merged.read_reg("x", 5)
        assert T.evaluate(reg, {"mg_in": 0}) == 1
        assert T.evaluate(reg, {"mg_in": 7}) == 2

    def test_merged_path_condition_is_disjunction(self):
        left, right, _ = sibling_pair()
        merged = try_merge(left, right)
        assert len(merged.path_condition) == 1
        cond = merged.path_condition[0]
        # Both arms satisfy the merged condition.
        assert T.evaluate(cond, {"mg_in": 0}) == 1
        assert T.evaluate(cond, {"mg_in": 1}) == 1

    def test_different_pc_not_merged(self):
        left, right, _ = sibling_pair()
        right.pc = 0x2000
        assert try_merge(left, right) is None

    def test_different_input_count_not_merged(self):
        left, right, _ = sibling_pair()
        left.next_input()
        assert try_merge(left, right) is None

    def test_different_memory_not_merged(self):
        left, right, _ = sibling_pair()
        left.memory.write_byte(0x80, T.bv(1, 8))
        assert try_merge(left, right) is None

    def test_same_memory_writes_merged(self):
        left, right, _ = sibling_pair()
        left.memory.write_byte(0x80, T.bv(9, 8))
        right.memory.write_byte(0x80, T.bv(9, 8))
        assert try_merge(left, right) is not None

    def test_different_output_not_merged(self):
        left, right, _ = sibling_pair()
        left.output.append(T.bv(1, 8))
        assert try_merge(left, right) is None

    def test_duplicate_states_collapse(self):
        state = make_state()
        state.assume(T.eq(T.var("mg_d", 8), T.bv(1, 8)))
        twin = state.fork()
        assert try_merge(state, twin) is state


class TestMergingFrontier:
    def test_counts_merges(self):
        frontier = MergingFrontier(BfsStrategy())
        left, right, _ = sibling_pair()
        frontier.push(left)
        frontier.push(right)
        assert frontier.merges == 1
        assert len(frontier) == 1
        merged = frontier.pop()
        assert merged.read_reg("x", 5).op == "ite"

    def test_unmergeable_states_coexist(self):
        frontier = MergingFrontier(BfsStrategy())
        a = make_state(0x1000)
        b = make_state(0x2000)
        frontier.push(a)
        frontier.push(b)
        assert len(frontier) == 2
        assert frontier.merges == 0

    def test_dead_states_skipped_on_pop(self):
        frontier = MergingFrontier(BfsStrategy())
        left, right, _ = sibling_pair()
        frontier.push(left)
        frontier.push(right)
        popped = frontier.pop()
        assert popped.state_id not in (left.state_id, right.state_id)
        assert len(frontier) == 0


class TestEngineWithMerging:
    @pytest.mark.parametrize("target", ["rv32", "vlx"])
    def test_diamonds_collapse(self, target):
        model, image = build_kernel("diamonds", target, count=6)
        plain = Engine(model, strategy="bfs")
        plain.load_image(image)
        plain_result = plain.explore()
        merging = Engine(model, strategy="bfs",
                         config=EngineConfig(merge_states=True))
        merging.load_image(image)
        merged_result = merging.explore()
        assert len(plain_result.paths) == 63
        assert len(merged_result.paths) < 16
        assert merging.strategy.merges > 0
        # Findings agree, and the merged trap input replays.
        defect = merged_result.first_defect(core.TRAP)
        assert defect is not None
        sim = run_image(model, image, input_bytes=defect.input_bytes)
        assert sim.trapped

    def test_merged_exploration_preserves_exit_codes(self):
        model = build("rv32")
        image = assemble(model, """
        .org 0x1000
        start:
            inb x1
            andi x1, x1, 1
            beq x1, x0, a
            addi x2, x0, 5
            jal x0, join
        a:  addi x2, x0, 5
        join:
            outb x2
            halt 0
        .entry start
        """, base=0x1000)
        engine = Engine(model, strategy="bfs",
                        config=EngineConfig(merge_states=True))
        engine.load_image(image)
        result = engine.explore()
        assert all(p.exit_code == 0 for p in result.paths)

    def test_dfs_merging_is_safe_noop(self):
        # Under DFS arms rarely coexist; merging must not break anything.
        model, image = build_kernel("diamonds", "rv32", count=5)
        engine = Engine(model, strategy="dfs",
                        config=EngineConfig(merge_states=True))
        engine.load_image(image)
        result = engine.explore()
        assert result.first_defect(core.TRAP) is not None
