"""Tests for coverage measurement, execution tracing, and taint checks."""

import pytest

from repro import core
from repro.core import Engine, EngineConfig, measure, trace_run
from repro.isa import assemble, build
from repro.programs import build_kernel


def explore(target, source=None, kernel=None, config=None, **params):
    model = build(target)
    if kernel is not None:
        model, image = build_kernel(kernel, target, **params)
    else:
        image = assemble(model, source, base=0x1000)
    engine = Engine(model, config=config or EngineConfig(
        collect_coverage=True))
    engine.load_image(image)
    return model, image, engine.explore()


class TestCoverage:
    def test_full_coverage_on_exhaustive_exploration(self):
        model, image, result = explore("rv32", kernel="bsearch")
        report = measure(model, image, result.visited_pcs)
        assert report.instruction_ratio == 1.0
        assert report.block_ratio == 1.0
        assert not report.uncovered_blocks()

    def test_partial_coverage_reported(self):
        model, image, result = explore("rv32", source="""
        .org 0x1000
        start:
            addi x1, x0, 1
            beq x1, x0, dead     # never taken
            halt 0
        dead:
            trap 1
        .entry start
        """)
        report = measure(model, image, result.visited_pcs)
        assert report.block_ratio < 1.0
        assert report.uncovered_blocks()

    def test_coverage_not_collected_by_default(self):
        model, image, result = explore(
            "rv32", kernel="password", secret=b"x",
            config=EngineConfig())
        assert result.visited_pcs == set()

    def test_dynamic_only_addresses(self):
        # An indirect jump the static CFG cannot follow: the executed
        # target shows up as dynamic-only coverage.
        model, image, result = explore("rv32", source="""
        .org 0x1000
        start:
            lui x1, 1
            addi x1, x1, 0x100
            jalr x0, 0(x1)
        .org 0x1100
            halt 0
        .entry start
        """)
        report = measure(model, image, result.visited_pcs)
        assert 0x1100 in report.dynamic_only

    def test_summary_text(self):
        model, image, result = explore("rv32", kernel="password",
                                       secret=b"q")
        report = measure(model, image, result.visited_pcs)
        assert "blocks" in report.summary()

    def test_dynamic_only_excluded_from_ratios(self):
        # Addresses behind the indirect jump inflate neither the
        # instruction nor the block ratio: they are *outside* the
        # statically known set.
        model, image, result = explore("rv32", source="""
        .org 0x1000
        start:
            lui x1, 1
            addi x1, x1, 0x100
            jalr x0, 0(x1)
        .org 0x1100
            addi x2, x0, 1
            halt 0
        .entry start
        """)
        report = measure(model, image, result.visited_pcs)
        assert report.dynamic_only == {0x1100, 0x1104}
        assert report.covered_instructions.isdisjoint(report.dynamic_only)
        assert report.instruction_ratio <= 1.0
        assert "dynamic-only" in report.summary()

    def test_dynamic_only_empty_for_direct_control_flow(self):
        model, image, result = explore("rv32", kernel="bsearch")
        report = measure(model, image, result.visited_pcs)
        assert report.dynamic_only == set()
        assert "dynamic-only" not in report.summary()

    def test_unified_summary_with_spec_coverage(self):
        model, image, result = explore("rv32", kernel="bsearch")
        report = measure(model, image, result.visited_pcs,
                         spec_coverage=True)
        text = report.summary()
        assert "coverage:" in text and "speccov[rv32]" in text
        assert report.rules.unattributed == {}

    def test_spec_coverage_off_by_default(self):
        model, image, result = explore("rv32", kernel="bsearch")
        report = measure(model, image, result.visited_pcs)
        assert report.rules is None
        assert "speccov" not in report.summary()


class TestTracer:
    def test_trace_records_register_writes(self):
        model = build("rv32")
        image = assemble(model, """
        .org 0x1000
        addi x1, x0, 7
        addi x2, x1, 1
        halt 0
        """, base=0x1000)
        tracer = trace_run(model, image)
        assert len(tracer.entries) == 3
        first = tracer.entries[0]
        assert first.address == 0x1000
        assert first.text.startswith("addi")
        assert ("x1", 0, 7) in first.reg_writes

    def test_trace_records_stores_and_output(self):
        model = build("rv32")
        image = assemble(model, """
        .org 0x1000
        addi x1, x0, 65
        lui x2, 1
        sb x1, 0x200(x2)
        outb x1
        halt 0
        """, base=0x1000)
        tracer = trace_run(model, image)
        store_entry = tracer.entries[2]
        assert (0x1200, 65) in store_entry.stores
        out_entry = tracer.entries[3]
        assert out_entry.output == [65]

    def test_trace_replays_solver_input(self):
        model, image = build_kernel("password", "rv32", secret=b"go")
        engine = Engine(model)
        engine.load_image(image)
        defect = engine.explore().first_defect(core.TRAP)
        tracer = trace_run(model, image, input_bytes=defect.input_bytes)
        assert tracer.simulator.trapped
        assert "trap" in tracer.entries[-1].text

    def test_entry_format_shows_stores_and_output(self):
        # The *rendered* trace must carry the memory store and the I/O
        # byte, not just the raw entry attributes.
        model = build("rv32")
        image = assemble(model, """
        .org 0x1000
        addi x1, x0, 65
        lui x2, 1
        sb x1, 0x200(x2)
        outb x1
        halt 0
        """, base=0x1000)
        tracer = trace_run(model, image)
        store_line = tracer.entries[2].format()
        assert "[0x1200] <- 0x41" in store_line
        out_line = tracer.entries[3].format()
        assert "out b'A'" in out_line
        # Register writes carry old -> new values.
        first_line = tracer.entries[0].format()
        assert "x1: 0x0 -> 0x41" in first_line
        # And the full-trace format() stitches the same lines together.
        full = tracer.format()
        assert store_line in full and out_line in full

    def test_entry_format_layout(self):
        model = build("rv32")
        image = assemble(model, ".org 0x1000\nhalt 0", base=0x1000)
        tracer = trace_run(model, image)
        line = tracer.entries[0].format()
        assert line.startswith("     0  0x001000")
        assert "halt" in line

    def test_next_pc_recorded_per_entry(self):
        model = build("rv32")
        image = assemble(model, """
        .org 0x1000
        start:
            addi x1, x0, 1
            jal x0, skip
            trap 1
        skip:
            halt 0
        .entry start
        """, base=0x1000)
        tracer = trace_run(model, image)
        # Sequential instruction: next_pc is the fall-through.
        assert tracer.entries[0].next_pc == 0x1004
        # Taken jump: next_pc is the branch target, not fall-through.
        assert tracer.entries[1].next_pc == 0x100c
        # Entries chain: each next_pc is the next entry's address.
        for this, following in zip(tracer.entries, tracer.entries[1:]):
            assert this.next_pc == following.address

    def test_format_with_limit(self):
        model = build("rv32")
        image = assemble(model, ".org 0x1000\n" + "addi x1, x1, 1\n" * 5
                         + "halt 0", base=0x1000)
        tracer = trace_run(model, image)
        text = tracer.format(limit=2)
        assert "more" in text

    def test_max_steps_bound(self):
        model = build("rv32")
        image = assemble(model, ".org 0x1000\nloop: jal x0, loop",
                         base=0x1000)
        tracer = trace_run(model, image, max_steps=7)
        assert len(tracer.entries) == 7


class TestTaintedControl:
    SOURCE = """
    .org 0x1000
    start:
        inb x1
        andi x1, x1, 4
        lui x2, 1
        addi x2, x2, 0x100
        add x2, x2, x1
        jalr x0, 0(x2)
    .org 0x1100
        halt 1
        halt 2
    .entry start
    """

    def test_input_dependent_target_reported(self):
        model, image, result = explore(
            "rv32", source=self.SOURCE,
            config=EngineConfig(check_tainted_control=True))
        defect = result.first_defect(core.TAINTED_CONTROL)
        assert defect is not None
        # Exploration still continues past the report.
        assert {p.exit_code for p in result.paths} == {1, 2}

    def test_disabled_by_default(self):
        model, image, result = explore("rv32", source=self.SOURCE)
        assert result.first_defect(core.TAINTED_CONTROL) is None

    def test_clean_indirect_jump_not_reported(self):
        model, image, result = explore("rv32", source="""
        .org 0x1000
        start:
            jal x1, fn
            halt 0
        fn: jalr x0, 0(x1)
        .entry start
        """, config=EngineConfig(check_tainted_control=True))
        assert result.first_defect(core.TAINTED_CONTROL) is None


class TestDispatcherKernel:
    @pytest.mark.parametrize("target", ["rv32", "vlx"])
    def test_trap_found_and_replayed(self, target):
        from repro.isa import run_image
        model, image = build_kernel("dispatcher", target, rounds=2,
                                    magic=0x31)
        engine = Engine(model)
        engine.load_image(image)
        defect = engine.explore().first_defect(core.TRAP)
        assert defect is not None
        sim = run_image(model, image, input_bytes=defect.input_bytes)
        assert sim.trapped

    def test_trap_needs_handler3_and_magic(self):
        model, image = build_kernel("dispatcher", "rv32", rounds=2,
                                    magic=0x31)
        engine = Engine(model)
        engine.load_image(image)
        defect = engine.explore().first_defect(core.TRAP)
        assert defect.input_bytes[0] & 3 == 3       # reached handler 3
        assert 0x31 in defect.input_bytes            # supplied the magic
