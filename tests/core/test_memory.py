"""Unit tests for symbolic memory (COW, endianness, regions)."""

import pytest

from repro.core.memory import PAGE_SIZE, MemoryMap, Region, SymMemory
from repro.smt import terms as T


def make_memory(cow=True):
    memory_map = MemoryMap([Region(0, 0x10000, "all")])
    return SymMemory(memory_map, cow=cow)


class TestRegions:
    def test_contains(self):
        region = Region(0x1000, 0x100, "r")
        assert region.contains(0x1000)
        assert region.contains(0x10ff)
        assert not region.contains(0x1100)
        assert not region.contains(0xfff)

    def test_region_for(self):
        mapping = MemoryMap([Region(0x1000, 0x100, "a"),
                             Region(0x2000, 0x100, "b")])
        assert mapping.region_for(0x2050).name == "b"
        assert mapping.region_for(0x3000) is None

    def test_membership_term(self):
        mapping = MemoryMap([Region(0x10, 0x10, "a")])
        addr = T.var("mm_addr", 16)
        inside = mapping.membership_term(addr)
        assert T.evaluate(inside, {"mm_addr": 0x15}) == 1
        assert T.evaluate(inside, {"mm_addr": 0x20}) == 0
        assert T.evaluate(inside, {"mm_addr": 0x0f}) == 0

    def test_empty_map_membership_is_false(self):
        mapping = MemoryMap()
        assert T.is_false(mapping.membership_term(T.var("mm_e", 16)))


class TestByteAccess:
    def test_unwritten_reads_zero(self):
        memory = make_memory()
        assert memory.read_byte(0x42).value == 0

    def test_image_backing(self):
        memory = make_memory()
        memory.load_image(0x100, b"\xaa\xbb")
        assert memory.read_byte(0x100).value == 0xaa
        assert memory.read_byte(0x101).value == 0xbb

    def test_write_overrides_image(self):
        memory = make_memory()
        memory.load_image(0x100, b"\xaa")
        memory.write_byte(0x100, T.bv(0x55, 8))
        assert memory.read_byte(0x100).value == 0x55

    def test_write_width_checked(self):
        memory = make_memory()
        with pytest.raises(T.WidthError):
            memory.write_byte(0, T.bv(0, 16))

    def test_symbolic_contents(self):
        memory = make_memory()
        value = T.var("mem_v", 8)
        memory.write_byte(0x10, value)
        assert memory.read_byte(0x10) is value


class TestWordAccess:
    def test_little_endian_roundtrip(self):
        memory = make_memory()
        memory.write(0x100, T.bv(0x11223344, 32), 4, "little")
        assert memory.read(0x100, 4, "little").value == 0x11223344
        assert memory.read_byte(0x100).value == 0x44

    def test_big_endian_roundtrip(self):
        memory = make_memory()
        memory.write(0x100, T.bv(0x11223344, 32), 4, "big")
        assert memory.read(0x100, 4, "big").value == 0x11223344
        assert memory.read_byte(0x100).value == 0x11

    def test_cross_endian_mismatch(self):
        memory = make_memory()
        memory.write(0x100, T.bv(0x1122, 16), 2, "little")
        assert memory.read(0x100, 2, "big").value == 0x2211

    def test_write_width_must_match_size(self):
        memory = make_memory()
        with pytest.raises(T.WidthError):
            memory.write(0, T.bv(0, 16), 4, "little")

    def test_concrete_window(self):
        memory = make_memory()
        memory.load_image(0x100, b"\x01\x02\x03")
        assert memory.concrete_window(0x100, 3) == b"\x01\x02\x03"

    def test_concrete_window_none_when_symbolic(self):
        memory = make_memory()
        memory.write_byte(0x101, T.var("cw_v", 8))
        assert memory.concrete_window(0x100, 3) is None


class TestCopyOnWrite:
    def test_fork_sees_parent_writes(self):
        memory = make_memory()
        memory.write_byte(0x10, T.bv(1, 8))
        child = memory.fork()
        assert child.read_byte(0x10).value == 1

    def test_child_write_invisible_to_parent(self):
        memory = make_memory()
        memory.write_byte(0x10, T.bv(1, 8))
        child = memory.fork()
        child.write_byte(0x10, T.bv(2, 8))
        assert memory.read_byte(0x10).value == 1
        assert child.read_byte(0x10).value == 2

    def test_parent_write_after_fork_invisible_to_child(self):
        memory = make_memory()
        memory.write_byte(0x10, T.bv(1, 8))
        child = memory.fork()
        memory.write_byte(0x10, T.bv(3, 8))
        assert child.read_byte(0x10).value == 1

    def test_sibling_isolation(self):
        memory = make_memory()
        first = memory.fork()
        second = memory.fork()
        first.write_byte(0, T.bv(1, 8))
        second.write_byte(0, T.bv(2, 8))
        assert first.read_byte(0).value == 1
        assert second.read_byte(0).value == 2

    def test_same_page_different_offsets_after_fork(self):
        memory = make_memory()
        memory.write_byte(0, T.bv(1, 8))
        child = memory.fork()
        child.write_byte(1, T.bv(2, 8))       # same page as offset 0
        assert memory.read_byte(1).value == 0
        assert child.read_byte(0).value == 1

    def test_flat_mode_fork_is_deep_copy(self):
        memory = make_memory(cow=False)
        memory.write_byte(0x10, T.bv(1, 8))
        child = memory.fork()
        child.write_byte(0x10, T.bv(2, 8))
        assert memory.read_byte(0x10).value == 1

    def test_written_and_initialized(self):
        memory = make_memory()
        memory.load_image(0x100, b"\x01")
        assert memory.is_initialized(0x100)
        assert not memory.is_initialized(0x200)
        memory.write_byte(0x200, T.bv(1, 8))
        assert memory.is_written(0x200)
        assert memory.is_initialized(0x200)

    def test_pages_touched(self):
        memory = make_memory()
        memory.write_byte(0, T.bv(1, 8))
        memory.write_byte(PAGE_SIZE, T.bv(1, 8))
        assert memory.pages_touched == 2
