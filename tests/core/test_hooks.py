"""Tests for engine extensibility: hooks, custom checkers, loop bounds."""

import pytest

from repro import core
from repro.core import Engine, EngineConfig
from repro.isa import assemble, build
from repro.smt import terms as T


def engine_for(source, config=None, strategy="dfs"):
    model = build("rv32")
    image = assemble(model, source, base=0x1000)
    engine = Engine(model, config=config, strategy=strategy)
    engine.load_image(image)
    return engine, model


class TestHooks:
    def test_hook_replaces_instruction(self):
        # Hook the trap: set a register instead of trapping.
        engine, _ = engine_for("""
        .org 0x1000
        start:
            trap 1              # hooked away
            outb x5
            halt 0
        .entry start
        """)

        def model_trap(eng, state):
            state.write_reg("x", 5, T.bv(ord("H"), 32))
            return None         # advance past the hooked instruction

        engine.hook(0x1000, model_trap)
        result = engine.explore()
        assert not result.defects
        assert result.paths[0].status == "halted"

    def test_hook_controls_successors(self):
        # Hook redirects control entirely.
        engine, _ = engine_for("""
        .org 0x1000
        start:
            addi x1, x0, 1      # hooked: jump straight to finish
            trap 9              # must never run
        finish:
            halt 4
        .org 0x1100
        .entry start
        """)

        def redirect(eng, state):
            state.pc = 0x1008    # 'finish'
            return [state]

        engine.hook(0x1000, redirect)
        result = engine.explore()
        assert not result.defects
        assert result.paths[0].exit_code == 4

    def test_hook_can_kill_path(self):
        engine, _ = engine_for(".org 0x1000\nstart: halt 0\n.entry start")
        engine.hook(0x1000, lambda eng, state: [])
        result = engine.explore()
        assert not result.paths

    def test_hook_can_fork(self):
        engine, _ = engine_for("""
        .org 0x1000
        start:
            addi x1, x0, 0      # hooked: fork into two continuations
            halt 1
            halt 2
        .entry start
        """)

        def forker(eng, state):
            sibling = state.fork()
            state.pc = 0x1004
            sibling.pc = 0x1008
            return [state, sibling]

        engine.hook(0x1000, forker)
        result = engine.explore()
        assert {p.exit_code for p in result.paths} == {1, 2}

    def test_hook_can_report_defect(self):
        engine, _ = engine_for(".org 0x1000\nstart: halt 0\n.entry start")

        def reporter(eng, state):
            eng.report(state, core.TRAP, "synthetic finding")
            return None

        engine.hook(0x1000, reporter)
        result = engine.explore()
        assert result.first_defect(core.TRAP) is not None

    def test_unhook(self):
        engine, _ = engine_for(".org 0x1000\nstart: trap 3\n.entry start")
        engine.hook(0x1000, lambda eng, state: [])
        engine.unhook(0x1000)
        result = engine.explore()
        assert result.first_defect(core.TRAP) is not None

    def test_hook_counts_as_instruction(self):
        engine, _ = engine_for("""
        .org 0x1000
        start:
            addi x1, x0, 1      # hooked and skipped
            halt 0
        .entry start
        """)
        engine.hook(0x1000, lambda eng, state: None)
        result = engine.explore()
        # hook at 0x1000 (counted) + the halt after it.
        assert result.instructions_executed == 2
        assert result.paths[0].status == "halted"


class TestCustomCheckers:
    def test_checker_sees_every_instruction(self):
        engine, _ = engine_for("""
        .org 0x1000
        addi x1, x0, 1
        addi x2, x0, 2
        halt 0
        """)
        seen = []
        engine.add_checker(
            lambda eng, state, decoded: seen.append(decoded.instruction.name))
        engine.explore()
        assert seen == ["addi", "addi", "halt"]

    def test_checker_reports_custom_defect(self):
        engine, _ = engine_for("""
        .org 0x1000
        addi x2, x0, 1
        slli x2, x2, 13         # x2 = 0x2000: "forbidden value"
        halt 0
        """)

        def forbid_0x2000(eng, state, decoded):
            value = state.read_reg("x", 2)
            if value.is_const() and value.value == 0x2000:
                eng.report(state, "forbidden-value",
                           "x2 hit the forbidden constant", decoded)

        engine.add_checker(forbid_0x2000)
        result = engine.explore()
        assert result.first_defect("forbidden-value") is not None


class TestLoopBound:
    LOOP = """
    .org 0x1000
    start:
        inb x1
    loop:
        addi x2, x2, 1
        bne x2, x1, loop       # runs input-many times
        halt 0
    .entry start
    """

    def test_unbounded_runs_to_depth_limit(self):
        config = EngineConfig(max_steps_per_path=64)
        engine, _ = engine_for(self.LOOP, config=config)
        result = engine.explore()
        assert any(p.status == "depth-limit" for p in result.paths)

    def test_loop_bound_prunes(self):
        config = EngineConfig(max_visits_per_pc=5, max_paths=50)
        engine, _ = engine_for(self.LOOP, config=config)
        result = engine.explore()
        assert any(p.status == "loop-limit" for p in result.paths)
        # Short-loop paths still halt normally.
        assert any(p.status == "halted" for p in result.paths)

    def test_bound_is_per_path_not_global(self):
        # Two sibling paths may each visit the same pc up to the bound.
        config = EngineConfig(max_visits_per_pc=3)
        engine, _ = engine_for("""
        .org 0x1000
        start:
            inb x1
            beq x1, x0, a
            addi x2, x0, 1
            halt 1
        a:  addi x2, x0, 2
            halt 2
        .entry start
        """, config=config)
        result = engine.explore()
        assert {p.exit_code for p in result.paths} == {1, 2}
