"""Tests for the concolic (generational search) driver."""

import pytest

from repro import core
from repro.core import Engine, EngineConfig
from repro.core.concolic import ConcolicExplorer
from repro.isa import assemble, build
from repro.programs import build_kernel


def concolic_for(target, source):
    model = build(target)
    image = assemble(model, source, base=0x1000)
    engine = Engine(model)
    engine.load_image(image)
    return ConcolicExplorer(engine)


class TestConcolicBasics:
    def test_straight_line_one_run(self):
        explorer = concolic_for("rv32", """
        .org 0x1000
        addi x1, x0, 1
        halt 0
        """)
        explorer.explore(seed=b"")
        assert len(explorer.runs) == 1
        assert explorer.runs[0].status == "halted"

    def test_one_branch_two_runs(self):
        explorer = concolic_for("rv32", """
        .org 0x1000
        inb x1
        beq x1, x0, a
        halt 1
        a: halt 2
        """)
        result = explorer.explore(seed=b"\x00")
        assert len(explorer.runs) == 2
        assert len(result.paths) == 2

    def test_finds_magic_bytes(self):
        explorer = concolic_for("rv32", """
        .org 0x1000
        inb x1
        addi x2, x0, 0x4b
        bne x1, x2, out
        inb x3
        addi x4, x0, 0x21
        bne x3, x4, out
        trap 5
        out: halt 0
        """)
        result = explorer.explore(seed=b"\x00\x00")
        defect = result.first_defect(core.TRAP)
        assert defect is not None
        assert defect.input_bytes.startswith(b"\x4b\x21")

    def test_duplicate_inputs_not_rerun(self):
        explorer = concolic_for("rv32", """
        .org 0x1000
        inb x1
        beq x1, x0, a
        halt 1
        a: halt 2
        """)
        explorer.explore(seed=b"\x00")
        inputs = [run.input_bytes for run in explorer.runs]
        assert len(inputs) == len(set(inputs))

    def test_max_runs_respected(self):
        model, image = build_kernel("maze", "rv32", depth=8)
        engine = Engine(model)
        engine.load_image(image)
        explorer = ConcolicExplorer(engine)
        explorer.explore(seed=bytes(8), max_runs=5)
        assert len(explorer.runs) <= 5


class TestConcolicKernels:
    @pytest.mark.parametrize("target", ["rv32", "vlx"])
    def test_password_kernel(self, target):
        model, image = build_kernel("password", target, secret=b"ok")
        engine = Engine(model)
        engine.load_image(image)
        explorer = ConcolicExplorer(engine)
        result = explorer.explore(seed=b"\x00\x00")
        defect = result.first_defect(core.TRAP)
        assert defect is not None
        assert defect.input_bytes == b"ok"

    def test_run_repr(self):
        explorer = concolic_for("rv32", ".org 0x1000\nhalt 0")
        explorer.explore()
        assert "halted" in repr(explorer.runs[0])


class TestConcolicSolverCache:
    """Sibling-flip queries ride the solver query cache (and must not
    change what generational search finds)."""

    @staticmethod
    def _explore(use_cache):
        from repro.smt import Solver
        model, image = build_kernel("maze", "rv32", depth=6)
        engine = Engine(model, solver=Solver(use_query_cache=use_cache),
                        config=EngineConfig(use_solver_cache=use_cache))
        engine.load_image(image)
        explorer = ConcolicExplorer(engine)
        result = explorer.explore(seed=bytes(6), max_runs=64)
        return explorer, result, engine

    def test_cache_agnostic_search_outcome(self):
        cached, cached_result, engine = self._explore(True)
        plain, plain_result, _ = self._explore(False)
        assert len(cached.runs) == len(plain.runs)
        assert (sorted(r.status for r in cached.runs)
                == sorted(r.status for r in plain.runs))
        assert len(cached_result.paths) == len(plain_result.paths)
        assert len(cached_result.defects) == len(plain_result.defects)
        # The repeated sibling queries actually hit the cache.
        stats = engine.solver.stats
        assert stats.cache_hits_total() + stats.cache_model_reuse > 0
        assert cached_result.solver_cache_line() is not None
