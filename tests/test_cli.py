"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

DEMO = """
.org 0x1000
.entry start
start:
    inb x1
    addi x2, x0, 7
    divu x3, x2, x1
    outb x3
    halt 0
"""

CLEAN = """
.org 0x1000
start:
    addi x1, x0, 65
    outb x1
    halt 0
.entry start
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN)
    return str(path)


class TestIsas:
    def test_lists_all_builtins(self, capsys):
        assert main(["isas"]) == 0
        out = capsys.readouterr().out
        for name in ("rv32", "mips32", "armlite", "vlx", "pred32"):
            assert name in out


class TestAsmDis:
    def test_asm_hexdump_and_symbols(self, demo_file, capsys):
        assert main(["asm", "rv32", demo_file]) == 0
        out = capsys.readouterr().out
        assert "20 bytes at 0x1000" in out
        assert "start" in out

    def test_dis_shows_mnemonics(self, demo_file, capsys):
        assert main(["dis", "rv32", demo_file]) == 0
        out = capsys.readouterr().out
        assert "divu x3, x2, x1" in out
        assert "halt 0" in out

    def test_custom_base(self, tmp_path, capsys):
        path = tmp_path / "b.s"
        path.write_text(".org 0x2000\nhalt 0\n")
        assert main(["asm", "rv32", str(path), "--base", "0x2000"]) == 0
        assert "0x2000" in capsys.readouterr().out


class TestRun:
    def test_run_clean_exits_zero(self, clean_file, capsys):
        assert main(["run", "rv32", clean_file]) == 0
        assert "output: b'A'" in capsys.readouterr().out

    def test_run_with_input_escapes(self, demo_file, capsys):
        assert main(["run", "rv32", demo_file, "--input", r"\x02"]) == 0
        assert r"b'\x03'" in capsys.readouterr().out

    def test_run_trap_exit_code(self, tmp_path):
        path = tmp_path / "t.s"
        path.write_text(".org 0x1000\ntrap 1\n")
        assert main(["run", "rv32", str(path)]) == 2

    def test_budget_exhaustion(self, tmp_path, capsys):
        path = tmp_path / "loop.s"
        path.write_text(".org 0x1000\nloop: jal x0, loop\n")
        assert main(["run", "rv32", str(path), "--max-steps", "5"]) == 1


class TestTrace:
    def test_trace_lists_instructions(self, clean_file, capsys):
        assert main(["trace", "rv32", clean_file]) == 0
        out = capsys.readouterr().out
        assert "addi x1, x0, 65" in out
        assert "out b'A'" in out


class TestExplore:
    def test_explore_reports_defect(self, demo_file, capsys):
        assert main(["explore", "rv32", demo_file]) == 2
        out = capsys.readouterr().out
        assert "division-by-zero" in out
        assert "coverage:" in out

    def test_explore_clean_returns_zero(self, clean_file, capsys):
        assert main(["explore", "rv32", clean_file]) == 0
        assert "defects=0" in capsys.readouterr().out

    def test_explore_strategy_and_merge_flags(self, clean_file):
        assert main(["explore", "rv32", clean_file, "--strategy", "bfs",
                     "--merge"]) == 0

    def test_explore_region_flag(self, tmp_path):
        path = tmp_path / "r.s"
        path.write_text("""
        .org 0x1000
        lui x1, 8
        lbu x2, 0(x1)      # 0x8000: only mapped via --region
        halt 0
        """)
        assert main(["explore", "rv32", str(path)]) == 2   # OOB
        assert main(["explore", "rv32", str(path),
                     "--region", "0x8000:16"]) == 0

    def test_explore_taint_flag(self, tmp_path, capsys):
        path = tmp_path / "taint.s"
        path.write_text("""
        .org 0x1000
        start:
            inb x1
            andi x1, x1, 4
            lui x2, 1
            addi x2, x2, 0x100
            add x2, x2, x1
            jalr x0, 0(x2)
        .org 0x1100
            halt 1
            halt 2
        .entry start
        """)
        assert main(["explore", "rv32", str(path), "--taint"]) == 2
        assert "tainted-control-flow" in capsys.readouterr().out


class TestCfg:
    def test_cfg_prints_blocks(self, demo_file, capsys):
        assert main(["cfg", "rv32", demo_file]) == 0
        out = capsys.readouterr().out
        assert "1 blocks" in out and "halt" in out

    def test_cfg_branching(self, tmp_path, capsys):
        path = tmp_path / "br.s"
        path.write_text("""
        .org 0x1000
        inb x1
        beq x1, x0, a
        halt 1
        a: halt 2
        """)
        assert main(["cfg", "rv32", str(path)]) == 0
        assert "3 blocks" in capsys.readouterr().out


BRANCHY = """
.org 0x1000
.entry start
start:
    inb x1
    andi x1, x1, 1
    beq x1, x0, even
    addi x2, x0, 1
    jal x0, done
even:
    addi x2, x0, 2
done:
    outb x2
    halt 0
"""


@pytest.fixture
def run_file(tmp_path):
    """An exploration persisted with --telemetry-out."""
    source = tmp_path / "branchy.s"
    source.write_text(BRANCHY)
    run = tmp_path / "run.jsonl"
    assert main(["explore", "rv32", str(source),
                 "--telemetry-out", str(run)]) == 0
    return str(run)


class TestTelemetryReaders:
    """stats / tree / speccov share one tolerant loader (satellite 2)."""

    def test_stats(self, run_file, capsys):
        assert main(["stats", run_file]) == 0
        out = capsys.readouterr().out
        assert "per-event-kind" in out and "step" in out

    def test_tree_ascii(self, run_file, capsys):
        assert main(["tree", run_file]) == 0
        out = capsys.readouterr().out
        assert "execution tree" in out
        assert "halted" in out

    def test_tree_dot_to_file(self, run_file, tmp_path, capsys):
        out_path = tmp_path / "tree.dot"
        assert main(["tree", run_file, "--format", "dot",
                     "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("digraph exploration {")

    def test_tree_json(self, run_file, capsys):
        import json
        assert main(["tree", run_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["isa"] == "rv32"
        assert payload["stats"]["leaves"] == len(payload["nodes"]) - \
            payload["stats"]["pruned"] - payload["stats"]["live"] - \
            sum(1 for n in payload["nodes"] if n["status"] == "merged")

    def test_speccov_report_and_gate(self, run_file, capsys):
        assert main(["speccov", run_file, "--min-ratio", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "spec coverage: rv32" in out
        assert "gate: every ISA >= 0.05" in out

    def test_speccov_gate_failure(self, run_file, capsys):
        assert main(["speccov", run_file, "--min-ratio", "1.1"]) == 1
        err = capsys.readouterr().err
        assert "rule coverage below 1.10" in err

    def test_speccov_annotate(self, run_file, capsys):
        assert main(["speccov", run_file, "--annotate"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# annotated spec coverage: rv32")

    @pytest.mark.parametrize("command", ["stats", "tree", "speccov"])
    def test_missing_file_is_one_line_error(self, command, tmp_path,
                                            capsys):
        assert main([command, str(tmp_path / "absent.jsonl")]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("command", ["stats", "tree", "speccov"])
    def test_empty_file_is_one_line_error(self, command, tmp_path,
                                          capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([command, str(path)]) == 1
        captured = capsys.readouterr()
        assert "empty" in captured.err
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("command", ["stats", "tree", "speccov"])
    def test_garbage_file_is_one_line_error(self, command, tmp_path,
                                            capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n{{{\n")
        assert main([command, str(path)]) == 1
        captured = capsys.readouterr()
        assert "no parseable" in captured.err

    def test_truncated_trailing_line_warns_but_succeeds(
            self, run_file, tmp_path, capsys):
        # Chop the file mid-record, as a killed run would leave it.
        data = open(run_file).read()
        truncated = tmp_path / "trunc.jsonl"
        truncated.write_text(data[:len(data) - 25])
        assert main(["tree", str(truncated)]) == 0
        captured = capsys.readouterr()
        assert "truncated trailing write" in captured.err
        assert "execution tree" in captured.out

    def test_tree_on_eventless_run(self, tmp_path, capsys):
        path = tmp_path / "meta-only.jsonl"
        path.write_text('{"kind": "meta", "record": "schema", '
                        '"version": 2}\n')
        assert main(["tree", str(path)]) == 1
        assert "no step/fork events" in capsys.readouterr().err

    def test_speccov_on_eventless_run(self, tmp_path, capsys):
        path = tmp_path / "meta-only.jsonl"
        path.write_text('{"kind": "meta", "record": "schema", '
                        '"version": 2}\n')
        assert main(["speccov", str(path)]) == 1
        assert "no step events" in capsys.readouterr().err

    def test_explore_prints_unified_coverage(self, run_file, tmp_path,
                                             capsys):
        source = tmp_path / "branchy2.s"
        source.write_text(BRANCHY)
        assert main(["explore", "rv32", str(source)]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert "speccov[rv32]" in out


@pytest.fixture
def health_run(tmp_path):
    """An exploration persisted with the health monitor attached."""
    source = tmp_path / "branchy.s"
    source.write_text(BRANCHY)
    run = tmp_path / "health.jsonl"
    assert main(["explore", "rv32", str(source),
                 "--telemetry-out", str(run),
                 "--health", "--health-every", "4"]) == 0
    return str(run)


def _write_sidecar(path, rate, wall_time=1.0):
    """Minimal synthetic telemetry sidecar (timing-noise-free, so the
    diffstats exit-code assertions are deterministic)."""
    import json
    records = [{"kind": "meta", "record": "schema", "version": 3}]
    for seq in range(3):
        records.append({"kind": "health", "isa": "rv32", "state": -1,
                        "pc": 0, "ts": 0.1 * seq,
                        "data": {"sample": {"v": 1, "seq": seq,
                                            "t": 0.1 * seq,
                                            "steps_per_sec": rate,
                                            "frontier": 4,
                                            "solver": {"share": 0.2}}}})
    records.append({"kind": "meta", "record": "run_summary",
                    "paths": 2, "defects": 0, "instructions": 1000,
                    "wall_time": wall_time, "stop_reason": "exhausted",
                    "telemetry": {}})
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return str(path)


class TestHealthCLI:
    """PR 4: --health / --max-seconds explore flags."""

    def test_explore_health_report_contents(self, tmp_path, capsys):
        source = tmp_path / "branchy.s"
        source.write_text(BRANCHY)
        assert main(["explore", "rv32", str(source),
                     "--health", "--health-every", "4"]) == 0
        out = capsys.readouterr().out
        assert "== health monitor ==" in out
        assert "health: samples=" in out
        assert "watchdog: healthy (0 diagnoses)" in out

    def test_explore_max_seconds_deadline(self, demo_file, capsys):
        assert main(["explore", "rv32", demo_file,
                     "--max-seconds", "0"]) == 0
        assert "stop=deadline" in capsys.readouterr().out

    def test_explore_serve_metrics(self, clean_file, capsys):
        assert main(["explore", "rv32", clean_file,
                     "--serve-metrics", "0"]) == 0
        assert "serving live metrics at http://127.0.0.1:" in \
            capsys.readouterr().out

    def test_explore_on_pressure_stop(self, tmp_path, capsys):
        source = tmp_path / "branchy.s"
        source.write_text(BRANCHY)
        assert main(["explore", "rv32", str(source),
                     "--health-every", "2", "--frontier-budget", "0",
                     "--on-pressure", "stop"]) == 0
        out = capsys.readouterr().out
        assert "stop=pressure" in out
        assert "frontier-pressure" in out


class TestTopCLI:
    def test_top_once_shows_latest_sample(self, health_run, capsys):
        assert main(["top", health_run, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "frontier=" in out and "solver:" in out

    def test_top_follow_stops_at_run_summary(self, health_run, capsys):
        # The run already finished, so follow mode drains the file,
        # sees the run_summary meta record and exits cleanly.
        assert main(["top", health_run, "--interval", "0.01",
                     "--max-wait", "2"]) == 0
        assert "run finished:" in capsys.readouterr().out

    def test_top_without_health_events_is_graceful(self, run_file,
                                                   capsys):
        assert main(["top", run_file, "--once"]) == 1
        err = capsys.readouterr().err
        assert "no health events" in err
        assert "Traceback" not in err


class TestMetricsCLI:
    def test_metrics_table(self, health_run, capsys):
        assert main(["metrics", health_run]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "engine.steps" in out
        assert "health.samples" in out

    def test_metrics_prom(self, health_run, capsys):
        assert main(["metrics", health_run, "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_steps_total counter" in out
        assert "repro_health_samples_total" in out

    def test_metrics_without_summary_is_graceful(self, tmp_path,
                                                 capsys):
        path = tmp_path / "meta-only.jsonl"
        path.write_text('{"kind": "meta", "record": "schema", '
                        '"version": 3}\n'
                        '{"kind": "step", "isa": "rv32", "state": 0, '
                        '"pc": 4096, "ts": 0.0}\n')
        assert main(["metrics", str(path)]) == 1
        err = capsys.readouterr().err
        assert "no metrics section" in err
        assert "Traceback" not in err


class TestDiffstatsCLI:
    def test_equal_runs_exit_zero(self, tmp_path, capsys):
        a = _write_sidecar(tmp_path / "a.jsonl", 1000.0)
        b = _write_sidecar(tmp_path / "b.jsonl", 1000.0)
        assert main(["diffstats", a, b]) == 0
        assert "regressions: 0" in capsys.readouterr().out

    def test_injected_regression_exits_three(self, tmp_path, capsys):
        a = _write_sidecar(tmp_path / "a.jsonl", 1000.0)
        b = _write_sidecar(tmp_path / "b.jsonl", 700.0)   # 30% slower
        assert main(["diffstats", a, b]) == 3
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "health.steps_per_sec.mean" in out

    def test_threshold_flag(self, tmp_path):
        a = _write_sidecar(tmp_path / "a.jsonl", 1000.0)
        b = _write_sidecar(tmp_path / "b.jsonl", 700.0)
        assert main(["diffstats", a, b, "--threshold", "0.5"]) == 0


class TestDegenerateTelemetryInputs:
    """PR 4 satellite: every reader fails gracefully, never a traceback."""

    @pytest.mark.parametrize("argv", [
        ["stats"], ["tree"], ["speccov"], ["metrics"], ["top", "--once"],
    ])
    def test_missing_file(self, argv, tmp_path, capsys):
        assert main(argv[:1] + [str(tmp_path / "absent.jsonl")]
                    + argv[1:]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("argv", [
        ["stats"], ["metrics"], ["top", "--once"],
    ])
    def test_empty_file(self, argv, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(argv[:1] + [str(path)] + argv[1:]) == 1
        captured = capsys.readouterr()
        assert "empty" in captured.err
        assert "Traceback" not in captured.err

    def test_diffstats_missing_either_side(self, tmp_path, capsys):
        real = _write_sidecar(tmp_path / "a.jsonl", 1000.0)
        absent = str(tmp_path / "absent.jsonl")
        assert main(["diffstats", absent, real]) == 1
        assert main(["diffstats", real, absent]) == 1
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err

    def test_zero_exploration_run(self, tmp_path, capsys):
        # A run that stopped before executing anything (e.g. a zero
        # deadline) still yields a parseable, reportable sidecar.
        source = tmp_path / "branchy.s"
        source.write_text(BRANCHY)
        run = tmp_path / "empty-run.jsonl"
        assert main(["explore", "rv32", str(source),
                     "--max-seconds", "0",
                     "--telemetry-out", str(run)]) == 0
        capsys.readouterr()
        assert main(["stats", str(run)]) == 0
        assert "stop=deadline" in capsys.readouterr().out
        assert main(["top", str(run), "--once"]) == 1
        assert "no health events" in capsys.readouterr().err

    def test_schema_v1_sidecar_still_reads(self, tmp_path, capsys):
        # Old sidecars predate health events; readers must degrade
        # gracefully, not crash.
        path = tmp_path / "v1.jsonl"
        path.write_text('{"kind": "meta", "record": "schema", '
                        '"version": 1}\n'
                        '{"kind": "step", "isa": "rv32", "state": 0, '
                        '"pc": 4096, "ts": 0.0, '
                        '"data": {"mnemonic": "addi"}}\n')
        assert main(["stats", str(path)]) == 0
        capsys.readouterr()
        assert main(["top", str(path), "--once"]) == 1
        assert "no health events" in capsys.readouterr().err
        assert main(["diffstats", str(path), str(path)]) == 0
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["--version"])
