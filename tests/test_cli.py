"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

DEMO = """
.org 0x1000
.entry start
start:
    inb x1
    addi x2, x0, 7
    divu x3, x2, x1
    outb x3
    halt 0
"""

CLEAN = """
.org 0x1000
start:
    addi x1, x0, 65
    outb x1
    halt 0
.entry start
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(DEMO)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.s"
    path.write_text(CLEAN)
    return str(path)


class TestIsas:
    def test_lists_all_builtins(self, capsys):
        assert main(["isas"]) == 0
        out = capsys.readouterr().out
        for name in ("rv32", "mips32", "armlite", "vlx", "pred32"):
            assert name in out


class TestAsmDis:
    def test_asm_hexdump_and_symbols(self, demo_file, capsys):
        assert main(["asm", "rv32", demo_file]) == 0
        out = capsys.readouterr().out
        assert "20 bytes at 0x1000" in out
        assert "start" in out

    def test_dis_shows_mnemonics(self, demo_file, capsys):
        assert main(["dis", "rv32", demo_file]) == 0
        out = capsys.readouterr().out
        assert "divu x3, x2, x1" in out
        assert "halt 0" in out

    def test_custom_base(self, tmp_path, capsys):
        path = tmp_path / "b.s"
        path.write_text(".org 0x2000\nhalt 0\n")
        assert main(["asm", "rv32", str(path), "--base", "0x2000"]) == 0
        assert "0x2000" in capsys.readouterr().out


class TestRun:
    def test_run_clean_exits_zero(self, clean_file, capsys):
        assert main(["run", "rv32", clean_file]) == 0
        assert "output: b'A'" in capsys.readouterr().out

    def test_run_with_input_escapes(self, demo_file, capsys):
        assert main(["run", "rv32", demo_file, "--input", r"\x02"]) == 0
        assert r"b'\x03'" in capsys.readouterr().out

    def test_run_trap_exit_code(self, tmp_path):
        path = tmp_path / "t.s"
        path.write_text(".org 0x1000\ntrap 1\n")
        assert main(["run", "rv32", str(path)]) == 2

    def test_budget_exhaustion(self, tmp_path, capsys):
        path = tmp_path / "loop.s"
        path.write_text(".org 0x1000\nloop: jal x0, loop\n")
        assert main(["run", "rv32", str(path), "--max-steps", "5"]) == 1


class TestTrace:
    def test_trace_lists_instructions(self, clean_file, capsys):
        assert main(["trace", "rv32", clean_file]) == 0
        out = capsys.readouterr().out
        assert "addi x1, x0, 65" in out
        assert "out b'A'" in out


class TestExplore:
    def test_explore_reports_defect(self, demo_file, capsys):
        assert main(["explore", "rv32", demo_file]) == 2
        out = capsys.readouterr().out
        assert "division-by-zero" in out
        assert "coverage:" in out

    def test_explore_clean_returns_zero(self, clean_file, capsys):
        assert main(["explore", "rv32", clean_file]) == 0
        assert "defects=0" in capsys.readouterr().out

    def test_explore_strategy_and_merge_flags(self, clean_file):
        assert main(["explore", "rv32", clean_file, "--strategy", "bfs",
                     "--merge"]) == 0

    def test_explore_region_flag(self, tmp_path):
        path = tmp_path / "r.s"
        path.write_text("""
        .org 0x1000
        lui x1, 8
        lbu x2, 0(x1)      # 0x8000: only mapped via --region
        halt 0
        """)
        assert main(["explore", "rv32", str(path)]) == 2   # OOB
        assert main(["explore", "rv32", str(path),
                     "--region", "0x8000:16"]) == 0

    def test_explore_taint_flag(self, tmp_path, capsys):
        path = tmp_path / "taint.s"
        path.write_text("""
        .org 0x1000
        start:
            inb x1
            andi x1, x1, 4
            lui x2, 1
            addi x2, x2, 0x100
            add x2, x2, x1
            jalr x0, 0(x2)
        .org 0x1100
            halt 1
            halt 2
        .entry start
        """)
        assert main(["explore", "rv32", str(path), "--taint"]) == 2
        assert "tainted-control-flow" in capsys.readouterr().out


class TestCfg:
    def test_cfg_prints_blocks(self, demo_file, capsys):
        assert main(["cfg", "rv32", demo_file]) == 0
        out = capsys.readouterr().out
        assert "1 blocks" in out and "halt" in out

    def test_cfg_branching(self, tmp_path, capsys):
        path = tmp_path / "br.s"
        path.write_text("""
        .org 0x1000
        inb x1
        beq x1, x0, a
        halt 1
        a: halt 2
        """)
        assert main(["cfg", "rv32", str(path)]) == 0
        assert "3 blocks" in capsys.readouterr().out


class TestParsing:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["--version"])
