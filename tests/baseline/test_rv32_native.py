"""Tests for the hand-written RV32 baseline engine, including agreement
with the generated engine (the differential heart of Table 4)."""

import pytest

from repro import core
from repro.baseline import Rv32NativeEngine
from repro.core import Engine
from repro.isa import assemble, build, run_image
from repro.programs import build_kernel


def native_for(source, regions=()):
    model = build("rv32")
    image = assemble(model, source, base=0x1000)
    engine = Rv32NativeEngine()
    engine.load_image(image)
    for start, size in regions:
        engine.add_region(start, size)
    return engine, image, model


class TestNativeBasics:
    def test_straight_line(self):
        engine, _, _ = native_for("""
        .org 0x1000
        addi x1, x0, 1
        add x2, x1, x1
        halt 5
        """)
        result = engine.explore()
        assert len(result.paths) == 1
        assert result.paths[0].exit_code == 5

    def test_fork_on_symbolic_branch(self):
        engine, _, _ = native_for("""
        .org 0x1000
        inb x1
        beq x1, x0, a
        halt 1
        a: halt 2
        """)
        result = engine.explore()
        assert len(result.paths) == 2

    def test_trap_with_input(self):
        engine, image, model = native_for("""
        .org 0x1000
        inb x1
        addi x2, x0, 42
        bne x1, x2, out
        trap 1
        out: halt 0
        """)
        result = engine.explore()
        defect = result.first_defect(core.TRAP)
        assert defect.input_bytes[0] == 42
        sim = run_image(model, image, input_bytes=defect.input_bytes)
        assert sim.trapped

    def test_div_zero_checker(self):
        engine, _, _ = native_for("""
        .org 0x1000
        inb x1
        addi x2, x0, 8
        divu x3, x2, x1
        halt 0
        """)
        result = engine.explore()
        assert result.first_defect(core.DIV_BY_ZERO) is not None

    def test_oob_checker(self):
        engine, _, _ = native_for("""
        .org 0x1000
        lui x1, 0x9
        lw x2, 0(x1)
        halt 0
        """)
        result = engine.explore()
        assert result.first_defect(core.OOB_ACCESS) is not None

    def test_undecodable(self):
        engine, _, _ = native_for("""
        .org 0x1000
        jal x0, data
        data: .word 0xffffffff
        """)
        result = engine.explore()
        assert result.first_defect(core.INVALID_INSTRUCTION) is not None

    def test_memory_sign_extension(self):
        engine, _, _ = native_for("""
        .org 0x1000
        lui x1, 1
        addi x1, x1, 0x300
        addi x2, x0, -2
        sb x2, 0(x1)
        lb x3, 0(x1)
        addi x4, x0, -2
        bne x3, x4, bad
        halt 0
        bad: trap 1
        .org 0x1300
        .space 4
        """)
        result = engine.explore()
        assert result.first_defect(core.TRAP) is None
        assert result.paths[0].exit_code == 0


class TestNativeVsGeneratedAgreement:
    """The two engines must agree on path counts, instruction counts and
    findings — this differentially validates the ADL-generated semantics."""

    KERNEL_CASES = [
        ("password", {"secret": b"zz"}),
        ("maze", {"depth": 5, "solution": 0b10101}),
        ("checksum", {"length": 2, "magic": 0x1111}),
        ("bsearch", {}),
    ]

    @pytest.mark.parametrize("kernel,params", KERNEL_CASES)
    def test_agreement(self, kernel, params):
        model, image = build_kernel(kernel, "rv32", **params)
        native = Rv32NativeEngine()
        native.load_image(image)
        native_result = native.explore()
        generated = Engine(model)
        generated.load_image(image)
        generated_result = generated.explore()
        assert len(native_result.paths) == len(generated_result.paths)
        assert (native_result.instructions_executed
                == generated_result.instructions_executed)
        native_kinds = sorted(d.kind for d in native_result.defects)
        generated_kinds = sorted(d.kind for d in generated_result.defects)
        assert native_kinds == generated_kinds

    @pytest.mark.parametrize("kernel,params", KERNEL_CASES)
    def test_same_trap_inputs_replay(self, kernel, params):
        model, image = build_kernel(kernel, "rv32", **params)
        native = Rv32NativeEngine()
        native.load_image(image)
        defect = native.explore().first_defect(core.TRAP)
        assert defect is not None
        sim = run_image(model, image, input_bytes=defect.input_bytes)
        assert sim.trapped
